"""DoubleSparsity-style baseline: channel-subset estimation + token top-k.

Yang et al.'s Double Sparsity estimates attention scores using only the
highest-magnitude *channels* of Q/K (offline-calibrated), then keeps the
top-k tokens per query.  The estimation is cheap but its computation and
memory traffic cannot be reused by the precise execution step — the paper's
core criticism of stage-splitting predictors — so its prediction cost scales
with the channel fraction regardless of achieved token sparsity.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attention.baselines.base import SparseAttentionResult, sparse_attention_from_mask
from repro.attention.policy import BaselineAttentionPolicy, register_policy

__all__ = ["double_sparsity_attention", "select_heavy_channels", "DoubleSparsityPolicy"]


def select_heavy_channels(k: np.ndarray, channel_fraction: float) -> np.ndarray:
    """Offline channel calibration: indices of the largest-energy channels."""
    k = np.asarray(k, dtype=np.float64)
    energy = (k * k).sum(axis=0)
    num = max(1, int(round(channel_fraction * k.shape[1])))
    return np.sort(np.argsort(energy)[::-1][:num])


@register_policy
class DoubleSparsityPolicy(BaselineAttentionPolicy):
    """Incremental channel-subset estimation + per-step token top-k.

    The heavy channels are calibrated once per request when the prompt
    enters the cache (the "offline" label-cache step) and frozen for
    decoding; each step estimates scores over that channel subset only
    and keeps the top-budget tokens.  ``channels`` overrides the
    calibration with an explicit index set — the legacy one-shot
    wrapper uses it to calibrate on the full sequence exactly as
    before.
    """

    name = "double-sparsity"

    def __init__(
        self,
        keep_fraction: float = 0.25,
        channel_fraction: float = 0.25,
        channels: Optional[np.ndarray] = None,
    ) -> None:
        self.keep_fraction = float(keep_fraction)
        self.channel_fraction = float(channel_fraction)
        self.channels = None if channels is None else np.asarray(channels, dtype=np.int64)

    def new_state(self, cache, total_tokens=None):
        state = super().new_state(cache, total_tokens)
        if self.channels is not None:
            calibrated = [self.channels for _ in range(cache.num_heads)]
        else:
            calibrated = [
                select_heavy_channels(cache.k_float[h], self.channel_fraction)
                for h in range(cache.num_heads)
            ]
        state.per_head["channels"] = calibrated
        return state

    def prediction_cost(self, state, num_queries: int, num_keys: int) -> float:
        return self.channel_fraction

    def head_row_mask(self, state, head, q_row, k_visible) -> np.ndarray:
        visible = k_visible.shape[0]
        channels = state.per_head["channels"][head]
        budget = max(1, int(round(self.keep_fraction * state.budget_context(visible))))
        est = q_row[channels] @ k_visible[:, channels].T
        keep = np.zeros(visible, dtype=bool)
        take = min(budget, visible)
        if take > 0:
            keep[np.argpartition(est, -take)[-take:]] = True
        return keep


def double_sparsity_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    keep_fraction: float,
    channel_fraction: float = 0.25,
    query_offset: Optional[int] = None,
    scale: Optional[float] = None,
    channels: Optional[np.ndarray] = None,
) -> SparseAttentionResult:
    """Sparse attention with channel-sparse score estimation + top-k tokens.

    Thin wrapper over :class:`DoubleSparsityPolicy` with the channels
    calibrated on the full ``k`` (the legacy offline-calibration
    semantics); pass ``channels`` to pin an explicit subset.
    """
    q = np.atleast_2d(np.asarray(q, dtype=np.float64))
    k = np.asarray(k, dtype=np.float64)
    if channels is None:
        channels = select_heavy_channels(k, channel_fraction)
    policy = DoubleSparsityPolicy(keep_fraction, channel_fraction, channels=channels)
    keep = policy.one_shot_mask(q, k, query_offset)
    prediction_cost = channel_fraction  # estimation touches that share of QK work
    return sparse_attention_from_mask(q, k, v, keep, prediction_cost, scale=scale)
