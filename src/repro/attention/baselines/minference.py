"""MInference-style baseline: dynamic selection over a fixed pattern menu.

MInference 1.0 classifies each head at runtime into one of a few sparse
patterns (A-shape = sink+local, vertical-slash = stripes + diagonals, block
sparse) using a cheap estimate on a subset of queries, then executes the
chosen pattern.  The reproduction keeps the essential structure:

1. *Prediction*: estimate scores from the last ``probe`` queries only
   (cost ≈ probe/S of a dense pass — this is the predictor overhead that
   cannot be reused, the inefficiency the paper calls out).
2. *Pattern selection*: pick the pattern whose mask captures the most
   estimated attention mass under the key budget.
3. *Execution*: dense attention over the selected pattern's mask.

Accuracy sits between StreamingLLM (no adaptivity) and fully dynamic methods
(restricted pattern diversity), matching the ordering in Fig. 15.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.attention.baselines.base import SparseAttentionResult, sparse_attention_from_mask
from repro.attention.dense import attention_scores, softmax
from repro.attention.masks import causal_mask, sink_recent_mask

__all__ = ["minference_attention", "build_pattern_menu"]


def _vertical_slash_mask(
    est_weights: np.ndarray,
    num_queries: int,
    num_keys: int,
    budget: int,
    offset: int,
) -> np.ndarray:
    """Stripe (vertical) + diagonal (slash) pattern from estimated weights."""
    col_mass = est_weights.sum(axis=0)
    num_cols = max(1, budget // 2)
    cols = np.argsort(col_mass)[::-1][:num_cols]
    keep = np.zeros((num_queries, num_keys), dtype=bool)
    keep[:, cols] = True
    # Slash component: diagonals near self-attention.
    width = max(1, budget - num_cols)
    rows = np.arange(num_queries)[:, None] + offset
    cols_idx = np.arange(num_keys)[None, :]
    keep |= (cols_idx <= rows) & (cols_idx > rows - width)
    return keep


def build_pattern_menu(
    est_weights: np.ndarray, num_queries: int, num_keys: int, budget: int, offset: int
) -> Dict[str, np.ndarray]:
    """The three candidate masks MInference chooses among."""
    a_shape = sink_recent_mask(
        num_queries, num_keys, max(1, budget // 4), max(1, 3 * budget // 4), offset
    )
    vslash = _vertical_slash_mask(est_weights, num_queries, num_keys, budget, offset)
    block = np.zeros((num_queries, num_keys), dtype=bool)
    block_size = 16
    num_blocks = max(1, budget // block_size)
    block_mass = np.add.reduceat(
        est_weights.sum(axis=0), np.arange(0, num_keys, block_size)
    )
    top_blocks = np.argsort(block_mass)[::-1][:num_blocks]
    for b in top_blocks:
        block[:, b * block_size : (b + 1) * block_size] = True
    return {"a_shape": a_shape, "vertical_slash": vslash, "block_sparse": block}


def minference_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    keep_fraction: float,
    probe_queries: int = 16,
    query_offset: Optional[int] = None,
    scale: Optional[float] = None,
) -> SparseAttentionResult:
    """Sparse attention with runtime pattern selection (MInference-style)."""
    q = np.atleast_2d(np.asarray(q, dtype=np.float64))
    k = np.asarray(k, dtype=np.float64)
    num_queries, num_keys = q.shape[0], k.shape[0]
    offset = num_keys - num_queries if query_offset is None else query_offset
    budget = max(1, int(round(keep_fraction * num_keys)))

    probe = min(probe_queries, num_queries)
    probe_logits = attention_scores(q[-probe:], k, scale)
    probe_causal = causal_mask(probe, num_keys, offset + num_queries - probe)
    probe_logits = np.where(probe_causal, probe_logits, -np.inf)
    est_weights = softmax(probe_logits, axis=-1)

    causal = causal_mask(num_queries, num_keys, offset)
    menu = build_pattern_menu(est_weights, num_queries, num_keys, budget, offset)
    best_name, best_mass = None, -1.0
    for name, mask in menu.items():
        probe_mask = mask[-probe:] & probe_causal
        mass = float(est_weights[probe_mask].sum())
        if mass > best_mass:
            best_name, best_mass = name, mass
    keep = menu[best_name] & causal

    prediction_cost = probe / max(1, num_queries)
    return sparse_attention_from_mask(q, k, v, keep, prediction_cost, scale=scale)
