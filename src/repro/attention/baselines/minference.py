"""MInference-style baseline: dynamic selection over a fixed pattern menu.

MInference 1.0 classifies each head at runtime into one of a few sparse
patterns (A-shape = sink+local, vertical-slash = stripes + diagonals, block
sparse) using a cheap estimate on a subset of queries, then executes the
chosen pattern.  The reproduction keeps the essential structure:

1. *Prediction*: estimate scores from the last ``probe`` queries only
   (cost ≈ probe/S of a dense pass — this is the predictor overhead that
   cannot be reused, the inefficiency the paper calls out).
2. *Pattern selection*: pick the pattern whose mask captures the most
   estimated attention mass under the key budget.
3. *Execution*: dense attention over the selected pattern's mask.

Accuracy sits between StreamingLLM (no adaptivity) and fully dynamic methods
(restricted pattern diversity), matching the ordering in Fig. 15.

The incremental :class:`MInferencePolicy` selects the pattern once per
head when the request's prompt queries arrive and then *extends* the
chosen pattern row by row during decoding (stripes/blocks frozen at
selection, sinks/slash tracking the new positions) — the staleness this
introduces is exactly the restricted adaptivity the paper criticizes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.attention.baselines.base import SparseAttentionResult, sparse_attention_from_mask
from repro.attention.dense import attention_scores, softmax
from repro.attention.masks import causal_mask, sink_recent_mask
from repro.attention.policy import BaselineAttentionPolicy, register_policy

__all__ = ["minference_attention", "build_pattern_menu", "MInferencePolicy"]

#: Block width of the block-sparse pattern (fixed, as in the original).
_BLOCK = 16


def _pattern_params(
    est_weights: np.ndarray, num_keys: int, budget: int
) -> Dict[str, dict]:
    """Budget split + estimated-mass choices of each candidate pattern."""
    col_mass = est_weights.sum(axis=0)
    num_cols = max(1, budget // 2)
    cols = np.argsort(col_mass)[::-1][:num_cols]
    block_mass = np.add.reduceat(col_mass, np.arange(0, num_keys, _BLOCK))
    num_blocks = max(1, budget // _BLOCK)
    top_blocks = np.argsort(block_mass)[::-1][:num_blocks]
    return {
        "a_shape": {"sink": max(1, budget // 4), "window": max(1, 3 * budget // 4)},
        "vertical_slash": {"cols": cols, "width": max(1, budget - num_cols)},
        "block_sparse": {"blocks": top_blocks},
    }


def _pattern_mask(
    name: str, params: dict, num_queries: int, num_keys: int, offset: int
) -> np.ndarray:
    """Materialize one pattern's keep mask for queries at ``offset``."""
    if name == "a_shape":
        return sink_recent_mask(
            num_queries, num_keys, params["sink"], params["window"], offset
        )
    if name == "vertical_slash":
        keep = np.zeros((num_queries, num_keys), dtype=bool)
        cols = params["cols"]
        keep[:, cols[cols < num_keys]] = True
        rows = np.arange(num_queries)[:, None] + offset
        cols_idx = np.arange(num_keys)[None, :]
        keep |= (cols_idx <= rows) & (cols_idx > rows - params["width"])
        return keep
    if name == "block_sparse":
        keep = np.zeros((num_queries, num_keys), dtype=bool)
        for b in params["blocks"]:
            keep[:, b * _BLOCK : (b + 1) * _BLOCK] = True
        return keep
    raise ValueError(f"unknown pattern {name!r}")


def build_pattern_menu(
    est_weights: np.ndarray, num_queries: int, num_keys: int, budget: int, offset: int
) -> Dict[str, np.ndarray]:
    """The three candidate masks MInference chooses among."""
    params = _pattern_params(est_weights, num_keys, budget)
    return {
        name: _pattern_mask(name, p, num_queries, num_keys, offset)
        for name, p in params.items()
    }


def _choose_pattern(
    q_block: np.ndarray,
    k: np.ndarray,
    offset: int,
    budget: int,
    probe_queries: int,
    scale: Optional[float] = None,
) -> Tuple[str, dict]:
    """Estimate from the trailing probe queries and pick the best pattern."""
    num_queries, num_keys = q_block.shape[0], k.shape[0]
    probe = min(probe_queries, num_queries)
    probe_logits = attention_scores(q_block[-probe:], k, scale)
    probe_causal = causal_mask(probe, num_keys, offset + num_queries - probe)
    probe_logits = np.where(probe_causal, probe_logits, -np.inf)
    est_weights = softmax(probe_logits, axis=-1)

    params = _pattern_params(est_weights, num_keys, budget)
    best_name, best_mass = None, -1.0
    for name, p in params.items():
        mask = _pattern_mask(name, p, num_queries, num_keys, offset)
        probe_mask = mask[-probe:] & probe_causal
        mass = float(est_weights[probe_mask].sum())
        if mass > best_mass:
            best_name, best_mass = name, mass
    return best_name, params[best_name]


@register_policy
class MInferencePolicy(BaselineAttentionPolicy):
    """Incremental pattern-menu selection (MInference served statefully).

    Per head, the pattern is chosen when the prompt queries arrive
    (paying the probe-estimate prediction cost once) and stored in the
    request's policy state; decode steps extend the stored pattern to
    each new position for free.  A request whose prefill carries no
    prompt queries selects lazily at its first decode step, probing
    with that single query.
    """

    name = "minference"

    def __init__(self, keep_fraction: float = 0.25, probe_queries: int = 16) -> None:
        self.keep_fraction = float(keep_fraction)
        self.probe_queries = int(probe_queries)

    def new_state(self, cache, total_tokens=None):
        state = super().new_state(cache, total_tokens)
        state.per_head["patterns"] = {}  # head -> (name, params)
        state.per_head["pending_prediction"] = 0.0
        return state

    def prediction_cost(self, state, num_queries: int, num_keys: int) -> float:
        cost = state.per_head["pending_prediction"]
        state.per_head["pending_prediction"] = 0.0
        return cost

    def _budget(self, state, visible: int) -> int:
        return max(1, int(round(self.keep_fraction * state.budget_context(visible))))

    def head_prefill_mask(self, state, head, q_rows, k, offset) -> np.ndarray:
        num_queries, num_keys = q_rows.shape[0], k.shape[0]
        budget = self._budget(state, num_keys)
        name, params = _choose_pattern(
            q_rows, k, offset, budget, self.probe_queries
        )
        state.per_head["patterns"][head] = (name, params)
        probe = min(self.probe_queries, num_queries)
        state.per_head["pending_prediction"] = probe / max(1, num_queries)
        return _pattern_mask(name, params, num_queries, num_keys, offset)

    def head_decode_mask(self, state, head, q_row, k) -> np.ndarray:
        visible = k.shape[0]
        if head not in state.per_head["patterns"]:
            budget = self._budget(state, visible)
            name, params = _choose_pattern(
                q_row[None, :], k, visible - 1, budget, self.probe_queries
            )
            state.per_head["patterns"][head] = (name, params)
            # One probe query over one query: a full dense scoring pass.
            state.per_head["pending_prediction"] = 1.0
        name, params = state.per_head["patterns"][head]
        return _pattern_mask(name, params, 1, visible, visible - 1)[0]


def minference_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    keep_fraction: float,
    probe_queries: int = 16,
    query_offset: Optional[int] = None,
    scale: Optional[float] = None,
) -> SparseAttentionResult:
    """Sparse attention with runtime pattern selection (MInference-style).

    Thin wrapper over the selection core shared with
    :class:`MInferencePolicy`: probe-estimate once over the full query
    block, materialize the winning pattern, mask causally.
    """
    q = np.atleast_2d(np.asarray(q, dtype=np.float64))
    k = np.asarray(k, dtype=np.float64)
    num_queries, num_keys = q.shape[0], k.shape[0]
    offset = num_keys - num_queries if query_offset is None else query_offset
    budget = max(1, int(round(keep_fraction * num_keys)))

    name, params = _choose_pattern(q, k, offset, budget, probe_queries, scale)
    keep = _pattern_mask(name, params, num_queries, num_keys, offset)
    keep &= causal_mask(num_queries, num_keys, offset)

    probe = min(probe_queries, num_queries)
    prediction_cost = probe / max(1, num_queries)
    return sparse_attention_from_mask(q, k, v, keep, prediction_cost, scale=scale)
