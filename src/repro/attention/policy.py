"""Pluggable attention policies: one serving engine, every sparse method.

The paper's headline claims are *comparative* — PADE's fused bit-plane
filtering against Quest, H2O, StreamingLLM, MInference, double sparsity
and the exact top-k oracle.  Before this layer existed those baselines
were one-shot, full-sequence functions that never touched the engine,
the paged cache pool or the continuous scheduler, so TTFT/TPOT/
throughput could only be measured for PADE.  An
:class:`AttentionPolicy` closes that gap: it is the strategy object the
policy-agnostic :class:`~repro.engine.engine.PadeEngine` consults at
prefill and at every decode step, so every serving feature (continuous
batching, paged blocks, preemption, prefix sharing, chunked prefill)
applies to every method and the serving currency becomes
apples-to-apples across policies.

Contract
--------
A policy implements four hooks:

``new_state(cache, total_tokens=None)``
    Create the per-request mutable state (H2O's alive/accumulated
    arrays, Quest's page summaries, MInference's chosen pattern …).
    The engine stores it on the cache (``cache.policy_state``), so
    preemption — which releases the cache — drops the state with it and
    a restarted request rebuilds it from scratch, keeping retained sets
    invariant.  ``total_tokens`` is the request's final context length
    (prompt + decode); budget-style policies resolve their key budgets
    against it, exactly like the legacy one-shot functions resolve
    theirs against the full sequence.
``prefill(engine, cache, q)``
    Attend the prompt queries ``q`` of shape ``(H, P, D)`` against the
    cache, returning an :class:`~repro.engine.engine.EngineAttentionResult`.
``decode_step(engine, cache, q)``
    Attend one decode query per head (``q`` of shape ``(H, D)``) against
    the cache, whose newest token was already appended.
``cache_footprint(prompt_tokens, decode_steps)``
    Peak KV tokens the policy needs resident.  Dense-footprint policies
    (PADE, Quest, top-k, …) return the full context; bounded policies
    (H2O's eviction budget, StreamingLLM's sink+window) return less —
    the continuous scheduler charges admission against this number, so a
    bounded policy admits more concurrent requests under the same pool
    budget.

State-per-block ownership: *content-derived* state (Quest's per-page
min/max — a pure function of the frozen block rows) is keyed by
:class:`~repro.engine.cache.PlaneBlockPool` block in ``pool.block_meta``
and therefore shared by prefix-shared blocks and invalidated when a
block frees or copy-on-write forks.  *Query-derived* state (H2O's
accumulated attention mass) depends on the request's own queries, lives
only in ``cache.policy_state``, and is never shared.

Registering a policy::

    @register_policy
    class MyPolicy(BaselineAttentionPolicy):
        name = "my-policy"
        ...

    engine = PadeEngine(policy="my-policy")

The registry is the extension point later serving features plug into;
``available_policies()`` feeds the CLI ``serve --attention`` choices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type, Union

import numpy as np

from repro.attention.dense import softmax
from repro.attention.masks import causal_mask

__all__ = [
    "AttentionPolicy",
    "BaselineAttentionPolicy",
    "BaselinePolicyState",
    "PadePolicy",
    "POLICY_REGISTRY",
    "register_policy",
    "get_policy",
    "available_policies",
    "resolve_policy",
    "resolve_draft_policy",
    "available_draft_policies",
]


#: name -> policy class.  Populated by :func:`register_policy`; the
#: baseline policies register on ``import repro.attention.baselines``.
POLICY_REGISTRY: Dict[str, Type["AttentionPolicy"]] = {}


def register_policy(cls: Type["AttentionPolicy"]) -> Type["AttentionPolicy"]:
    """Class decorator: publish ``cls`` under ``cls.name`` in the registry."""
    if not getattr(cls, "name", None):
        raise ValueError(f"{cls.__name__} must define a non-empty 'name'")
    POLICY_REGISTRY[cls.name] = cls
    return cls


def _ensure_registered() -> None:
    # The baseline policies live next to their legacy one-shot functions
    # and register on import; defer it so policy.py itself stays
    # import-light (and cycle-free: baselines import this module).
    import repro.attention.baselines  # noqa: F401


def available_policies() -> List[str]:
    """Sorted registry names (the CLI ``--attention`` choices)."""
    _ensure_registered()
    return sorted(POLICY_REGISTRY)


def get_policy(name: str, **kwargs) -> "AttentionPolicy":
    """Instantiate the policy registered under ``name``."""
    _ensure_registered()
    if name not in POLICY_REGISTRY:
        raise ValueError(
            f"unknown attention policy {name!r}; choose from {available_policies()}"
        )
    return POLICY_REGISTRY[name](**kwargs)


def resolve_policy(
    policy: Union[None, str, "AttentionPolicy"],
) -> "AttentionPolicy":
    """Engine-side resolution: ``None`` → PADE, str → registry, instance → as-is."""
    if policy is None:
        return get_policy("pade")
    if isinstance(policy, str):
        return get_policy(policy)
    return policy


def available_draft_policies() -> List[str]:
    """Registry names usable as the cheap draft in speculative decoding."""
    _ensure_registered()
    return sorted(
        name for name, cls in POLICY_REGISTRY.items() if cls.draftable
    )


def resolve_draft_policy(
    policy: Union[None, str, "AttentionPolicy"],
) -> "AttentionPolicy":
    """Resolve the *draft* side of a draft-verify speculative pair.

    Only :attr:`AttentionPolicy.draftable` policies qualify: the
    scheduler forks a rollback anchor before every draft block and
    re-attaches the draft's per-request state to it on a reject, which
    is sound only when that state never absorbs information from the
    speculated (possibly discarded) tokens.  Stateless positional
    policies (StreamingLLM) and pure functions of the current K/V
    (top-k oracle) qualify; accumulation-style policies like H2O — whose
    eviction mass would be polluted by rolled-back queries — do not.
    """
    resolved = resolve_policy(policy if policy is not None else "streaming-llm")
    if not resolved.draftable:
        raise ValueError(
            f"policy {resolved.name!r} cannot be used as a speculative draft; "
            f"choose from {available_draft_policies()}"
        )
    return resolved


class AttentionPolicy:
    """Base class: how the engine selects and attends retained keys.

    A policy instance is engine-owned and request-agnostic; all mutable
    per-request state goes through :meth:`new_state` and is stored on
    the cache by the engine.
    """

    #: Registry name; subclasses must override.
    name: str = ""
    #: True when :meth:`cache_footprint` always equals the full context.
    #: The continuous scheduler keeps its physical admission path for
    #: dense-footprint policies and switches to charged-footprint
    #: accounting for bounded ones.
    dense_footprint: bool = True
    #: True when the policy implements :meth:`decode_step_batch` and the
    #: scheduler may fuse one decode round across the whole active set.
    #: A batched step must be *result-identical* to calling
    #: :meth:`decode_step` per request in active-set order — outputs,
    #: retained sets, and per-request stats byte for byte (DESIGN.md
    #: §13).  Policies that keep it ``False`` always serve through the
    #: per-request loop, even when the scheduler runs in batched mode.
    supports_batched_decode: bool = False
    #: True when the policy is sound as the cheap *draft* of a
    #: draft-verify speculative pair (DESIGN.md §17): its per-request
    #: state must not accumulate information from speculated queries,
    #: because a rejected draft block rolls the cache back to the fork
    #: anchor and re-attaches the same state object.
    draftable: bool = False

    # ------------------------------------------------------------------
    def cache_footprint(self, prompt_tokens: int, decode_steps: int) -> int:
        """Peak resident KV tokens for a request (dense: the full context)."""
        return prompt_tokens + decode_steps

    def new_state(self, cache, total_tokens: Optional[int] = None):
        """Per-request state created at prefill (None for stateless)."""
        return None

    def prefill(self, engine, cache, q: np.ndarray):
        raise NotImplementedError

    def decode_step(self, engine, cache, q: np.ndarray):
        raise NotImplementedError

    def decode_step_batch(self, engine, caches, qs):
        """One fused decode step over several requests (optional hook).

        Only consulted when :attr:`supports_batched_decode` is ``True``;
        must return one result per request, in order, identical to a
        :meth:`decode_step` loop.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _record(self, engine, result) -> None:
        """Fold one attention call into the engine's policy cost counters."""
        if engine is None:
            return
        engine.stats.policy_calls += 1
        engine.stats.policy_prediction_cost += result.prediction_cost
        engine.stats.policy_execution_cost += result.execution_cost


class PadePolicy(AttentionPolicy):
    """The paper's method: fused bit-serial filtering over cached planes.

    Routes straight to :meth:`PadeEngine.attend` — the exact pre-policy
    code path, so retained sets and outputs are byte-identical to the
    engine before this layer existed (pinned by
    ``benchmarks/bench_policies.py``).  Prediction cost is zero *by
    construction*: the filter's bound evaluation IS the execution's
    first bit-planes, the reuse argument the paper makes against
    stage-splitting predictors.
    """

    name = "pade"
    supports_batched_decode = True

    def prefill(self, engine, cache, q: np.ndarray):
        res = engine.attend(cache, q)
        self._record(engine, res)
        return res

    def decode_step(self, engine, cache, q: np.ndarray):
        res = engine.attend(cache, np.asarray(q, dtype=np.float64)[:, None, :])
        self._record(engine, res)
        return res

    def decode_step_batch(self, engine, caches, qs):
        """Fused decode round: one cross-request filter call via
        :meth:`PadeEngine.attend_batch`, recorded per request exactly as
        the per-request loop would."""
        results = engine.attend_batch(
            caches, [np.asarray(q, dtype=np.float64)[:, None, :] for q in qs]
        )
        for res in results:
            self._record(engine, res)
        return results


register_policy(PadePolicy)


# ---------------------------------------------------------------------------
# Baseline orchestration: per-head row masks + masked dense execution
# ---------------------------------------------------------------------------


@dataclass
class BaselinePolicyState:
    """Common per-request state of the software baselines.

    ``total_tokens`` is the final context length the key budgets resolve
    against (``None`` falls back to the current cache length — the
    policy then re-scales its budget as the sequence grows).
    ``per_head`` is free-form storage for the concrete policy.
    """

    prompt_tokens: int
    total_tokens: Optional[int] = None
    per_head: dict = field(default_factory=dict)

    def budget_context(self, current_length: int) -> int:
        return current_length if self.total_tokens is None else self.total_tokens


class BaselineAttentionPolicy(AttentionPolicy):
    """Shared multi-head machinery for the converted software baselines.

    Concrete policies implement two single-head hooks —
    :meth:`head_prefill_mask` (rows for the prompt queries) and
    :meth:`head_decode_mask` (one row for the newest query) — plus a
    per-call prediction-cost model; this base class handles head
    batching, masked dense execution over the cache's float K/V, cost
    accounting and result assembly.  The legacy one-shot functions are
    thin wrappers over the same hooks (via :meth:`one_shot_mask`), which
    is what makes the incremental-equals-one-shot parity tests exact.
    """

    def new_state(self, cache, total_tokens: Optional[int] = None):
        return BaselinePolicyState(
            prompt_tokens=cache.length, total_tokens=total_tokens
        )

    # -- single-head hooks ---------------------------------------------
    def head_prefill_mask(
        self, state, head: int, q_rows: np.ndarray, k: np.ndarray, offset: int
    ) -> np.ndarray:
        """Keep mask ``(P, S)`` for prompt queries at ``offset``.

        Default: one :meth:`head_decode_mask`-equivalent row per query
        position, each restricted to its causally visible prefix.
        """
        num_queries, num_keys = q_rows.shape[0], k.shape[0]
        keep = np.zeros((num_queries, num_keys), dtype=bool)
        for i in range(num_queries):
            visible = offset + i + 1
            keep[i, :visible] = self.head_row_mask(
                state, head, q_rows[i], k[:visible]
            )
        return keep

    def head_decode_mask(
        self, state, head: int, q_row: np.ndarray, k: np.ndarray
    ) -> np.ndarray:
        """Keep mask ``(S,)`` for the newest decode query (position S-1)."""
        return self.head_row_mask(state, head, q_row, k)

    def head_row_mask(
        self, state, head: int, q_row: np.ndarray, k_visible: np.ndarray
    ) -> np.ndarray:
        """Selection core: keep mask over the visible keys for one query."""
        raise NotImplementedError

    def prediction_cost(self, state, num_queries: int, num_keys: int) -> float:
        """Per-call predictor overhead (fraction of a dense pass)."""
        return 0.0

    # -- engine-facing orchestration -----------------------------------
    def prefill(self, engine, cache, q: np.ndarray):
        q = np.asarray(q, dtype=np.float64)
        state = self._ensure_state(cache)
        num_heads, num_queries, _ = q.shape
        offset = cache.length - num_queries
        k = cache.k_float  # one gather for all heads (paged caches copy here)
        keep = np.stack(
            [
                self.head_prefill_mask(state, h, q[h], k[h], offset)
                for h in range(num_heads)
            ]
        )
        return self._execute(engine, cache, q, keep, offset, k)

    def decode_step(self, engine, cache, q: np.ndarray):
        q = np.asarray(q, dtype=np.float64)
        state = self._ensure_state(cache)
        num_heads = cache.num_heads
        seq_len = cache.length
        k = cache.k_float  # one gather for all heads (paged caches copy here)
        keep = np.stack(
            [self.head_decode_mask(state, h, q[h], k[h]) for h in range(num_heads)]
        )[:, None, :]
        return self._execute(engine, cache, q[:, None, :], keep, seq_len - 1, k)

    def _ensure_state(self, cache):
        if cache.policy_state is None:
            cache.policy_state = self.new_state(cache)
        return cache.policy_state

    def _execute(
        self,
        engine,
        cache,
        q: np.ndarray,
        keep: np.ndarray,
        offset: int,
        k: Optional[np.ndarray] = None,
    ):
        """Masked dense attention over the retained sets + cost assembly."""
        from repro.engine.engine import EngineAttentionResult

        num_heads, num_queries, _ = q.shape
        seq_len = cache.length
        causal = causal_mask(num_queries, seq_len, offset)
        keep = keep & causal
        values = cache.values
        if k is None:
            k = cache.k_float
        scores = np.einsum("hpd,hsd->hps", q, k) / np.sqrt(cache.head_dim)
        logits = np.where(keep, scores, -np.inf)
        probs = softmax(logits, axis=-1)
        output = np.einsum("hps,hsd->hpd", probs, values)

        candidates = num_heads * int(causal.sum())
        state = cache.policy_state
        prediction = self.prediction_cost(state, num_queries, seq_len)
        execution = float(keep.sum()) / candidates if candidates else 0.0
        result = EngineAttentionResult(
            output=output,
            retained=keep,
            scores=scores,
            logit_scales=np.ones(num_heads),
            guards=np.zeros(num_heads),
            candidate_keys=candidates,
            prediction_cost=prediction,
            execution_cost=execution,
        )
        if engine is not None:
            engine.stats.retained_keys += int(keep.sum())
            engine.stats.candidate_keys += candidates
        self._record(engine, result)
        return result

    # -- one-shot wrapper support --------------------------------------
    def one_shot_mask(
        self, q: np.ndarray, k: np.ndarray, query_offset: Optional[int] = None
    ) -> np.ndarray:
        """Full ``(P, S)`` keep mask of a single-head, one-shot call.

        Drives exactly the incremental per-row hooks over a throwaway
        state calibrated on the full ``k`` — the legacy one-shot
        baseline functions are thin wrappers around this.
        """
        q = np.atleast_2d(np.asarray(q, dtype=np.float64))
        k = np.asarray(k, dtype=np.float64)
        num_queries, num_keys = q.shape[0], k.shape[0]
        offset = num_keys - num_queries if query_offset is None else query_offset
        cache = _ArrayCacheView(k)
        state = self.new_state(cache, total_tokens=num_keys)
        return self.head_prefill_mask(state, 0, q, k, offset) & causal_mask(
            num_queries, num_keys, offset
        )


class _ArrayCacheView:
    """Minimal single-head cache shim backing the one-shot wrappers."""

    def __init__(self, k: np.ndarray) -> None:
        k = np.asarray(k, dtype=np.float64)
        self.k_float = k[None]
        self.num_heads = 1
        self.head_dim = k.shape[1]
        self.length = k.shape[0]
        self.policy_state = None
