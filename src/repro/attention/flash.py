"""Tiled online-softmax attention (FlashAttention semantics).

The ISTA dataflow (Fig. 10c) is a sparsified version of this kernel; keeping
a faithful dense tiled implementation lets the tests establish that (a) the
online softmax recurrence is exact, and (b) ISTA degenerates to it when
nothing is pruned.  The GPU baseline's FA3 mode also reuses this kernel's
IO accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["FlashStats", "flash_attention"]


@dataclass
class FlashStats:
    """IO/op counters of the tiled pass."""

    tiles: int = 0
    max_updates: int = 0
    exp_ops: int = 0
    pv_macs: int = 0
    k_rows_loaded: int = 0
    v_rows_loaded: int = 0


def flash_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    tile_size: int = 16,
    mask: Optional[np.ndarray] = None,
    scale: Optional[float] = None,
    return_stats: bool = False,
):
    """Compute attention with the m/l/O online-softmax recurrence.

    Parameters mirror :func:`repro.attention.dense.dense_attention`; the
    result is numerically identical (up to fp rounding) while touching K/V
    one ``tile_size`` block at a time.
    """
    q = np.atleast_2d(np.asarray(q, dtype=np.float64))
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    num_queries, head_dim = q.shape
    num_keys = k.shape[0]
    if scale is None:
        scale = 1.0 / np.sqrt(head_dim)
    keep = None
    if mask is not None:
        keep = np.asarray(mask, dtype=bool)
        if keep.ndim == 1:
            keep = np.broadcast_to(keep, (num_queries, num_keys))

    stats = FlashStats()
    m = np.full(num_queries, -np.inf)
    l = np.zeros(num_queries)
    o = np.zeros((num_queries, v.shape[1]))

    for start in range(0, num_keys, tile_size):
        end = min(start + tile_size, num_keys)
        logits = (q @ k[start:end].T) * scale
        if keep is not None:
            logits = np.where(keep[:, start:end], logits, -np.inf)
        stats.tiles += 1
        stats.k_rows_loaded += end - start
        stats.v_rows_loaded += end - start

        tile_max = logits.max(axis=1)
        m_new = np.maximum(m, tile_max)
        m_new = np.where(np.isfinite(m_new), m_new, m)  # fully masked tile
        updated = m_new > m
        stats.max_updates += int(np.count_nonzero(updated & np.isfinite(m)))
        correction = np.where(np.isfinite(m), np.exp(m - np.where(np.isfinite(m_new), m_new, 0.0)), 0.0)
        correction = np.where(np.isfinite(m_new), correction, 1.0)
        first = ~np.isfinite(m) & np.isfinite(m_new)
        correction = np.where(first, 0.0, correction)
        l = l * correction
        o = o * correction[:, None]
        m = np.where(np.isfinite(m_new), m_new, m)

        safe_m = np.where(np.isfinite(m), m, 0.0)
        p = np.exp(logits - safe_m[:, None])
        p = np.where(np.isfinite(logits), p, 0.0)
        stats.exp_ops += p.size
        l = l + p.sum(axis=1)
        o = o + p @ v[start:end]
        stats.pv_macs += p.size * v.shape[1]

    out = np.divide(o, l[:, None], out=np.zeros_like(o), where=l[:, None] > 0)
    if return_stats:
        return out, stats
    return out
