"""Reference dense softmax attention (the accuracy/IO baseline).

Everything in the reproduction is validated against this implementation:
PADE's output must converge to it as the guard grows, and ISTA's online
softmax must match it exactly on the retained key set.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["softmax", "attention_scores", "dense_attention", "masked_dense_attention"]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax; rows that are entirely ``-inf`` yield zeros."""
    logits = np.asarray(logits, dtype=np.float64)
    m = np.max(logits, axis=axis, keepdims=True)
    m = np.where(np.isfinite(m), m, 0.0)
    e = np.exp(logits - m)
    denom = e.sum(axis=axis, keepdims=True)
    return np.divide(e, denom, out=np.zeros_like(e), where=denom > 0)


def attention_scores(
    q: np.ndarray, k: np.ndarray, scale: Optional[float] = None
) -> np.ndarray:
    """Scaled logits ``Q K^T * scale`` (default ``1/sqrt(H)``)."""
    q = np.atleast_2d(np.asarray(q, dtype=np.float64))
    k = np.asarray(k, dtype=np.float64)
    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[-1])
    return (q @ k.T) * scale


def dense_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: Optional[np.ndarray] = None,
    scale: Optional[float] = None,
) -> np.ndarray:
    """Full softmax attention.  ``mask`` is a bool keep-mask ``(P, S)`` or ``(S,)``."""
    logits = attention_scores(q, k, scale)
    if mask is not None:
        keep = np.asarray(mask, dtype=bool)
        if keep.ndim == 1:
            keep = np.broadcast_to(keep, logits.shape)
        logits = np.where(keep, logits, -np.inf)
    weights = softmax(logits, axis=-1)
    return weights @ np.asarray(v, dtype=np.float64)


def masked_dense_attention(
    q: np.ndarray, k: np.ndarray, v: np.ndarray, keep: np.ndarray, scale: Optional[float] = None
) -> np.ndarray:
    """Dense attention restricted to an explicit retained-key mask.

    This is the oracle a sparse method is compared against: given the *same*
    retained set, the outputs must agree (ISTA invariant #5 in DESIGN.md).
    """
    return dense_attention(q, k, v, mask=keep, scale=scale)
