"""Attention masks shared by the reference implementations and baselines."""

from __future__ import annotations

import numpy as np

__all__ = ["causal_mask", "window_mask", "sink_recent_mask"]


def causal_mask(num_queries: int, num_keys: int, query_offset: int = 0) -> np.ndarray:
    """Keep-mask where query ``i`` sees keys ``<= query_offset + i``."""
    rows = np.arange(num_queries)[:, None] + query_offset
    cols = np.arange(num_keys)[None, :]
    return cols <= rows


def window_mask(num_queries: int, num_keys: int, window: int, query_offset: int = 0) -> np.ndarray:
    """Sliding-window keep-mask of width ``window`` ending at each query."""
    rows = np.arange(num_queries)[:, None] + query_offset
    cols = np.arange(num_keys)[None, :]
    return (cols <= rows) & (cols > rows - window)


def sink_recent_mask(
    num_queries: int,
    num_keys: int,
    sink_tokens: int,
    recent_tokens: int,
    query_offset: int = 0,
) -> np.ndarray:
    """StreamingLLM-style keep-mask: attention sinks + recency window."""
    keep = window_mask(num_queries, num_keys, recent_tokens, query_offset)
    if sink_tokens:
        causal = causal_mask(num_queries, num_keys, query_offset)
        keep = keep.copy()
        keep[:, :sink_tokens] |= causal[:, :sink_tokens]
    return keep
