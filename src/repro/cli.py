"""Command-line interface: regenerate any paper experiment from the shell.

    python -m repro.cli list                 # show available experiments
    python -m repro.cli fig14                # regenerate one figure's data
    python -m repro.cli table2 --json        # machine-readable output
    python -m repro.cli all                  # run everything (slow)
    python -m repro.cli engine               # serving-engine decode profile
    python -m repro.cli serve --rate 0.5 --budget 2048 --policy fcfs
    python -m repro.cli fig4 --backend reference   # pick the kernel backend

``--backend`` selects the fused-filter kernel implementation for the whole
run (``reference`` = Python-loop kernels, ``fast`` = round-vectorized;
results are identical, only wall-clock differs).  Without the flag the
``$REPRO_BACKEND`` environment variable, then the registry default
(``fast``), applies — see :mod:`repro.core.backend`.

The ``serve`` experiment additionally honors ``--rate`` (mean Poisson
arrivals per decode round), ``--budget`` (global KV token budget of the
paged plane pool), ``--sched-policy``/``--policy`` (scheduling policy:
``fcfs`` / ``shortest-prompt`` / ``priority`` / ``edf`` / ``fair``),
``--scenario`` (a named scenario workload — ``bursty`` / ``diurnal`` /
``heavy_tail`` / ``multi_tenant``), ``--tenants`` (tenant count of the
multi-tenant mix), ``--attention`` (the attention policy served
through the engine — PADE or any registered sparse baseline; choices
come from :data:`repro.attention.policy.POLICY_REGISTRY`),
``--prefix-sharing`` (hash-based copy-on-write prompt-prefix sharing on
a shared-system-prompt workload), ``--round-tokens`` (tokens one decode
round can process — activates the prefill cost model), ``--chunk``
(chunked prefill: per-request, per-round prompt chunk size; requires
``--round-tokens``), ``--batched-decode`` /
``--no-batched-decode`` (fuse each decode round's filter across the
whole active set — on by default; results are byte-identical either
way, only speed differs), ``--async`` / ``--port`` (serve the same
workload through the asyncio loopback front-end in
:mod:`repro.serve`: the round-clock report is identical, and measured
wall-clock TTFT/TPOT/queueing columns are added), and ``--replicas`` /
``--routing`` (shard the workload over N engine worker subprocesses
behind the prefix-affinity router in :mod:`repro.cluster`; the report
becomes the cluster roll-up with ``cluster_throughput_tokens_per_round``
and ``jain_replica_index``).  ``--speculative`` / ``--draft-policy`` /
``--draft-tokens`` / ``--spec-accept-tol`` turn on draft-verify
speculative decoding (a draftable policy proposes tokens on a
copy-on-write forked cache, the PADE verifier accepts a prefix per
round), and ``--parallel-samples N`` serves n-best parallel sampling
(N decode lineages forked off one shared prefill).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict

from repro.attention.policy import available_draft_policies, available_policies
from repro.cluster.router import ROUTING_MODES
from repro.core.backend import available_backends, set_default_backend
from repro.engine import SCHEDULING_POLICIES
from repro.eval import harness as H
from repro.eval.workloads import SCENARIO_KINDS

#: experiment id -> (callable, one-line description)
EXPERIMENTS: Dict[str, tuple] = {
    "table1": (H.table1_features, "Table I: accelerator feature matrix"),
    "table2": (H.table2_accuracy, "Table II: accuracy across 22 benchmarks"),
    "table3": (H.table3_config, "Table III: PADE hardware configuration"),
    "fig2": (H.fig2_power_breakdown, "Fig.2a: predictor/executor power split"),
    "fig2b": (H.fig2_ratio_vs_seqlen, "Fig.2b: predictor ratio vs sequence length"),
    "fig4": (H.fig4_bsf_reduction, "Fig.4c: BSF vs stage-splitting reductions"),
    "fig5": (H.fig5_untiled_memory, "Fig.5f: untiled memory growth"),
    "fig10": (H.fig10_max_update_overhead, "Fig.10b: head-tail interleaving"),
    "fig14": (H.fig14_comp_mem, "Fig.14: computation/memory across models"),
    "fig15": (H.fig15_accuracy_vs_sparsity, "Fig.15ab: accuracy vs sparsity level"),
    "fig15c": (H.fig15_speedup_energy, "Fig.15c: gains vs software methods"),
    "fig16": (H.fig16_ablation, "Fig.16a: technique ablation"),
    "fig16b": (H.fig16_alpha_tradeoff, "Fig.16b: alpha trade-off"),
    "fig17": (H.fig17_gsat_dse, "Fig.17a: GSAT sub-group DSE"),
    "fig17b": (H.fig17_scoreboard_dse, "Fig.17b: scoreboard DSE"),
    "fig18": (H.fig18_bit_overhead, "Fig.18a: bit-serial overhead"),
    "fig18b": (H.fig18_gpu_comparison, "Fig.18b: PADE vs H100"),
    "fig19": (H.fig19_gain_breakdown, "Fig.19: gain waterfall"),
    "fig20": (H.fig20_area_power, "Fig.20: area/power breakdown"),
    "fig21": (H.fig21_sota_comparison, "Fig.21: SOTA comparison"),
    "fig23": (H.fig23_workload_balance, "Fig.23a: workload balance vs BitWave"),
    "fig23b": (H.fig23_bandwidth, "Fig.23b: bandwidth utilization"),
    "fig24": (H.fig24_system_integration, "Fig.24: GPU+PADE system"),
    "fig25": (H.fig25_mx_example, "Fig.25: MX-format BUI"),
    "fig26": (H.fig26_quantization, "Fig.26a: quantization variants"),
    "fig26b": (H.fig26_decoding, "Fig.26b: long-sequence decoding"),
    "engine": (H.engine_decode_profile, "Serving engine: cached-plane decode profile"),
    "serve": (H.serving_profile, "Serving: continuous batching over the paged plane pool"),
}


def _render(obj, indent: int = 0) -> None:
    pad = "  " * indent
    if isinstance(obj, dict):
        for k, v in obj.items():
            if isinstance(v, (dict, list)):
                print(f"{pad}{k}:")
                _render(v, indent + 1)
            else:
                print(f"{pad}{k}: {_fmt(v)}")
    elif isinstance(obj, list):
        for v in obj:
            _render(v, indent) if isinstance(v, (dict, list)) else print(f"{pad}- {_fmt(v)}")
    else:
        print(f"{pad}{_fmt(obj)}")


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def _to_jsonable(obj):
    import numpy as np

    if isinstance(obj, dict):
        return {str(k): _to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_to_jsonable(v) for v in obj]
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    return obj


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Regenerate PADE (HPCA'26) paper experiments."
    )
    parser.add_argument("experiment", help="experiment id, 'list', or 'all'")
    parser.add_argument("--json", action="store_true", help="emit JSON instead of text")
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help="fused-filter kernel backend (default: $REPRO_BACKEND or 'fast'); "
        "backends are result-identical, only speed differs",
    )
    serve_group = parser.add_argument_group("serve", "flags for the 'serve' experiment")
    serve_group.add_argument(
        "--rate", type=float, default=0.4,
        help="mean Poisson request arrivals per decode round (serve only)",
    )
    serve_group.add_argument(
        "--budget", type=int, default=1536,
        help="global KV token budget of the paged plane pool (serve only)",
    )
    serve_group.add_argument(
        "--policy", "--sched-policy", choices=SCHEDULING_POLICIES, default="fcfs",
        help="scheduling policy of the continuous scheduler: admission "
        "ordering + preemption victim selection (serve only)",
    )
    serve_group.add_argument(
        "--scenario", choices=SCENARIO_KINDS, default=None,
        help="serve a named scenario workload instead of the plain "
        "Poisson stream (serve only)",
    )
    serve_group.add_argument(
        "--tenants", type=int, default=3,
        help="tenant count of the multi_tenant scenario mix (serve only)",
    )
    serve_group.add_argument(
        "--attention", choices=available_policies(), default="pade",
        help="attention policy served through the engine: PADE or any "
        "registered sparse-attention baseline (serve only)",
    )
    serve_group.add_argument(
        "--prefix-sharing", action="store_true",
        help="content-hash copy-on-write prefix sharing over a "
        "shared-system-prompt workload (serve only)",
    )
    serve_group.add_argument(
        "--chunk", type=int, default=0,
        help="chunked prefill: prompt tokens per request per round; "
        "0 = unchunked (serve only, needs --round-tokens)",
    )
    serve_group.add_argument(
        "--round-tokens", type=int, default=0,
        help="tokens one decode round can process — activates the prefill "
        "cost model; 0 = legacy instant prefill (serve only)",
    )
    serve_group.add_argument(
        "--batched-decode", action=argparse.BooleanOptionalAction, default=True,
        help="fuse each decode round's filter across the whole active set "
        "(byte-identical results; --no-batched-decode forces the "
        "per-request loop) (serve only)",
    )
    serve_group.add_argument(
        "--async", dest="async_serve", action="store_true",
        help="serve the workload through the asyncio loopback front-end "
        "(repro.serve): identical round-clock report plus measured "
        "wall-clock TTFT/TPOT columns (serve only)",
    )
    serve_group.add_argument(
        "--port", type=int, default=0,
        help="listening port of the async front-end; 0 = ephemeral "
        "(serve only, needs --async)",
    )
    serve_group.add_argument(
        "--replicas", type=int, default=1,
        help="shard the workload over N engine worker subprocesses behind "
        "the prefix-affinity router (repro.cluster); 1 = single in-process "
        "engine (serve only)",
    )
    serve_group.add_argument(
        "--tiering", action="store_true",
        help="two-tier bit-plane KV memory: spill low-order planes of "
        "cold blocks under pressure instead of preempting; PADE "
        "attention only (serve only)",
    )
    serve_group.add_argument(
        "--tier-min-planes", type=int, default=2,
        help="residency floor: planes a block keeps resident even fully "
        "spilled (serve only, needs --tiering)",
    )
    serve_group.add_argument(
        "--tier-restore-blocks", type=int, default=4,
        help="prefetch-restore cap: degraded blocks restored per decode "
        "round (serve only, needs --tiering)",
    )
    serve_group.add_argument(
        "--speculative", action="store_true",
        help="draft-verify speculative decoding: a cheap draftable policy "
        "proposes tokens on a COW-forked cache, the PADE verifier accepts "
        "a prefix per round; served on a draft-friendly workload; PADE "
        "attention only (serve only)",
    )
    serve_group.add_argument(
        "--parallel-samples", type=int, default=1,
        help="n-best parallel sampling: fork every request into N decode "
        "lineages off one shared prefill; PADE attention only (serve only)",
    )
    serve_group.add_argument(
        "--draft-policy", choices=available_draft_policies(), default="streaming-llm",
        help="draft proposer policy for --speculative; only stateless / "
        "rollback-sound policies are draftable (serve only)",
    )
    serve_group.add_argument(
        "--draft-tokens", type=int, default=4,
        help="draft depth: tokens proposed per speculative round "
        "(serve only, needs --speculative)",
    )
    serve_group.add_argument(
        "--spec-accept-tol", type=float, default=0.05,
        help="relative-L2 tolerance for accepting a drafted token against "
        "the verifier output (serve only, needs --speculative)",
    )
    serve_group.add_argument(
        "--routing", choices=ROUTING_MODES, default="prefix",
        help="replica routing mode: 'prefix' matches chained prompt block "
        "keys against each replica's key index, 'random' and "
        "'least-loaded' are the control arms (serve only, needs "
        "--replicas > 1)",
    )
    args = parser.parse_args(argv)
    if args.backend is not None:
        set_default_backend(args.backend)

    if args.experiment == "list":
        for name, (_, desc) in EXPERIMENTS.items():
            print(f"{name:8s} {desc}")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if any(n not in EXPERIMENTS for n in names):
        print(f"unknown experiment {args.experiment!r}; try 'list'", file=sys.stderr)
        return 2

    for name in names:
        fn, desc = EXPERIMENTS[name]
        kwargs = (
            {
                "rate": args.rate,
                "budget": args.budget,
                "policy": args.policy,
                "attention": args.attention,
                "prefix_sharing": args.prefix_sharing,
                "chunk": args.chunk,
                "round_tokens": args.round_tokens,
                "scenario": args.scenario,
                "tenants": args.tenants,
                "batched": args.batched_decode,
                "async_serve": args.async_serve,
                "port": args.port,
                "replicas": args.replicas,
                "routing": args.routing,
                "tiering": args.tiering,
                "tier_min_planes": args.tier_min_planes,
                "tier_restore_blocks": args.tier_restore_blocks,
                "speculative": args.speculative,
                "parallel_samples": args.parallel_samples,
                "draft_policy": args.draft_policy,
                "draft_tokens": args.draft_tokens,
                "spec_accept_tol": args.spec_accept_tol,
            }
            if name == "serve"
            else {}
        )
        # perf_counter, not time.time: monotonic, so the elapsed span
        # cannot go negative under an NTP clock adjustment.
        t0 = time.perf_counter()
        data = fn(**kwargs)
        elapsed = time.perf_counter() - t0
        if args.json:
            print(json.dumps({name: _to_jsonable(data)}, indent=2))
        else:
            print(f"\n### {desc}  ({elapsed:.1f}s)")
            _render(data)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
