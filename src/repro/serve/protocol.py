"""Wire protocol of the async serving front-end.

Newline-delimited JSON (NDJSON) over a stream socket: every message is
one JSON object on one line, so framing is ``readline`` and the protocol
stays debuggable with ``nc``.  Tensors travel as base64-encoded little-
endian float64 buffers next to their shape; requests carry their full
prompt/decode tensors exactly as :class:`EngineRequest` holds them, so
any workload the in-process path can serve can be replayed over the
socket byte for byte.

Client → server message types::

    {"type": "submit", "request": {...}, "arrival": "now" | <float>}
    {"type": "cancel", "request_id": "r3"}
    {"type": "shutdown"}

Server → client::

    {"type": "accepted" | "rejected", "request_id": ..., ["error": ...]}
    {"type": "token", "request_id", "step", "digest", "output": {...}}
    {"type": "done", "request_id", "status", "abort_reason", "timing",
     "wall", "output_digest", "retained_digest", ...}
    {"type": "shutdown_ack", "leaked_blocks", "served", "report"}

``arrival: "now"`` asks the server to stamp the request's round-clock
arrival at the moment the engine loop picks it up (live traffic);
omitting it (or sending a number) keeps the workload's own arrival
schedule — the open-loop / deterministic-replay mode.

Digests are sha256 over the canonical (C-contiguous float64) byte
encoding; :func:`array_digest` and :func:`result_digests` are shared
with the in-process side so parity checks compare like with like.
"""

from __future__ import annotations

import base64
import hashlib
import json
from dataclasses import replace
from typing import Dict, Optional

import numpy as np

from repro.engine.scheduler import EngineRequest

__all__ = [
    "MAX_LINE_BYTES",
    "encode_message",
    "decode_message",
    "encode_array",
    "decode_array",
    "encode_request",
    "decode_request",
    "array_digest",
    "result_digests",
]

#: Stream-reader line limit: a submit line carries a request's full
#: prompt + decode tensors (base64), far past asyncio's 64 KiB default.
MAX_LINE_BYTES = 1 << 24


def encode_message(msg: Dict) -> bytes:
    """One protocol message as one NDJSON line."""
    return (json.dumps(msg, separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line: bytes) -> Dict:
    msg = json.loads(line.decode("utf-8"))
    if not isinstance(msg, dict) or "type" not in msg:
        raise ValueError("protocol message must be a JSON object with a 'type'")
    return msg


def encode_array(arr: np.ndarray) -> Dict:
    arr = np.ascontiguousarray(np.asarray(arr, dtype=np.float64))
    return {
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def decode_array(obj: Optional[Dict]) -> Optional[np.ndarray]:
    if obj is None:
        return None
    buf = base64.b64decode(obj["data"])
    return np.frombuffer(buf, dtype=np.float64).reshape(obj["shape"]).copy()


def array_digest(arr: np.ndarray) -> str:
    """sha256 over the canonical float64 byte encoding of ``arr``."""
    arr = np.ascontiguousarray(np.asarray(arr, dtype=np.float64))
    return hashlib.sha256(arr.tobytes()).hexdigest()


def result_digests(result) -> Dict[str, str]:
    """Canonical digests of a :class:`RequestResult`'s outputs.

    ``output`` covers the stacked decode outputs, ``retained`` the
    per-step retained-set encoding (:meth:`RequestResult.retained_bytes`)
    — byte-identical serving paths must agree on both.
    """
    return {
        "output_digest": array_digest(result.decode_outputs),
        "retained_digest": hashlib.sha256(result.retained_bytes()).hexdigest(),
    }


_TENSOR_FIELDS = (
    "k",
    "v",
    "q_prompt",
    "decode_q",
    "decode_k",
    "decode_v",
    "sample_decode_q",
    "sample_decode_k",
    "sample_decode_v",
)
_SCALAR_FIELDS = (
    "arrival_time",
    "tenant",
    "priority",
    "deadline_ms",
    "max_queue_ms",
    "speculative",
    "draft_tokens",
)


def encode_request(request: EngineRequest) -> Dict:
    """An :class:`EngineRequest` as a JSON-safe dict (tensors base64)."""
    obj: Dict = {"request_id": request.request_id}
    for name in _TENSOR_FIELDS:
        value = getattr(request, name)
        obj[name] = None if value is None else encode_array(value)
    for name in _SCALAR_FIELDS:
        obj[name] = getattr(request, name)
    return obj


def decode_request(obj: Dict, arrival_time: Optional[float] = None) -> EngineRequest:
    """Rebuild an :class:`EngineRequest`; ``arrival_time`` overrides the
    encoded one (the server's ``arrival: "now"`` stamping)."""
    kwargs = {name: decode_array(obj.get(name)) for name in _TENSOR_FIELDS}
    kwargs["arrival_time"] = float(obj.get("arrival_time", 0.0))
    kwargs["tenant"] = str(obj.get("tenant", "default"))
    kwargs["priority"] = int(obj.get("priority", 0))
    kwargs["deadline_ms"] = obj.get("deadline_ms")
    kwargs["max_queue_ms"] = obj.get("max_queue_ms")
    kwargs["speculative"] = bool(obj.get("speculative", False))
    kwargs["draft_tokens"] = int(obj.get("draft_tokens", 4))
    request = EngineRequest(request_id=str(obj["request_id"]), **kwargs)
    if arrival_time is not None:
        request = replace(request, arrival_time=float(arrival_time))
    return request
