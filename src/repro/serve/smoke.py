"""Async-serve smoke: start a server, stream a small workload through
the closed-loop client over loopback, assert a clean shutdown.

Exit code 0 requires: every request accepted and completed ``ok`` with
a non-empty token stream, the shutdown ack reporting zero leaked pool
blocks, and wall-clock TTFT populated for every request.  With
``--open-loop`` the workload instead replays each request's Poisson
arrival schedule against real wall-clock time (``--pace`` seconds per
round unit), and the makespan must additionally cover the paced
submission window — the standing paced-load scenario.  Run by CI as::

    python -m repro.serve.smoke --requests 6
    python -m repro.serve.smoke --requests 6 --open-loop --pace 0.02
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.config import PadeConfig
from repro.engine import PadeEngine
from repro.eval.workloads import build_serving_workload
from repro.serve.client import serve_workload_over_loopback

__all__ = ["main"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Async-serve loopback smoke test.")
    parser.add_argument("--requests", type=int, default=6)
    parser.add_argument("--steps", type=int, default=8)
    parser.add_argument("--context", type=int, default=48)
    parser.add_argument("--budget", type=int, default=1536)
    parser.add_argument("--concurrency", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--open-loop", action="store_true",
        help="replay the workload's arrival schedule open-loop instead of "
        "running the closed-loop client",
    )
    parser.add_argument(
        "--pace", type=float, default=0.02,
        help="wall-clock seconds per arrival round unit (open-loop only)",
    )
    args = parser.parse_args(argv)

    engine = PadeEngine(PadeConfig.standard(), policy="pade")
    workload = build_serving_workload(
        args.requests, 4, args.context, args.steps, 32, rate=0.5, seed=args.seed
    )
    pace = args.pace if args.open_loop else 0.0
    dones, ack, _server = serve_workload_over_loopback(
        engine,
        workload,
        barrier=False,
        concurrency=args.concurrency,
        pace_s_per_round=pace,
        max_active=4,
        token_budget=args.budget,
        block_size=16,
    )

    failures = []
    if len(dones) != args.requests:
        failures.append(f"expected {args.requests} dones, got {len(dones)}")
    for rid, done in sorted(dones.items()):
        if done.get("type") != "done" or done.get("status") != "ok":
            failures.append(f"{rid}: not served ok ({done.get('type')}/{done.get('status')})")
        elif not done.get("tokens"):
            failures.append(f"{rid}: no streamed tokens")
    if ack.get("leaked_blocks", -1) != 0:
        failures.append(f"leaked_blocks = {ack.get('leaked_blocks')}")
    report = ack.get("report", {})
    if report.get("n_wall_ttft_ms", 0.0) != float(args.requests):
        failures.append(f"wall TTFT series incomplete: {report.get('n_wall_ttft_ms')}")
    if pace > 0:
        # The paced replay must actually have taken wall-clock time: the
        # makespan (first submit -> last completion) covers at least the
        # paced span between the first and last arrivals.
        arrivals = [r.arrival_time for r in workload]
        floor_ms = (max(arrivals) - min(arrivals)) * pace * 1000.0
        if report.get("wall_makespan_ms", 0.0) < floor_ms:
            failures.append(
                f"paced makespan {report.get('wall_makespan_ms'):.1f}ms below "
                f"pacing floor {floor_ms:.1f}ms"
            )

    print(
        json.dumps(
            {
                "requests": len(dones),
                "leaked_blocks": ack.get("leaked_blocks"),
                "wall_makespan_ms": report.get("wall_makespan_ms"),
                "p95_wall_ttft_ms": report.get("p95_wall_ttft_ms"),
                "wall_tokens_per_s": report.get("wall_tokens_per_s"),
                "failures": failures,
            },
            indent=2,
        )
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
