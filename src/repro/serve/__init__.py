"""Asyncio serving front-end over the continuous-batching engine.

The in-process stack simulates time in decode rounds; this package puts
a real wall clock (and real sockets) in front of it without forking the
scheduling logic:

* :mod:`repro.serve.protocol` — newline-delimited JSON over a stream
  socket: tensor-carrying submits, per-token streaming replies, done /
  cancel / shutdown control messages, canonical sha256 digests.
* :mod:`repro.serve.server` — :class:`AsyncPadeServer`: an
  ``asyncio.start_server`` service whose engine loop drives
  :meth:`ContinuousScheduler.step` one round at a time, with a bounded
  accept queue for backpressure, client disconnect mapped onto the
  round-boundary abort path, and measured wall-clock marks
  (``time.perf_counter``) stamped next to every round-clock mark.
* :mod:`repro.serve.client` — :class:`ServeConnection` plus closed-loop
  and open-loop load generators and the
  :func:`serve_workload_over_loopback` harness entry point.
* :mod:`repro.serve.smoke` — the CI smoke: serve a small workload over
  loopback, assert clean shutdown and zero leaked pool blocks.

Because the server drives the *same* :meth:`ContinuousScheduler.step`
the in-process :meth:`PadeEngine.serve` loop runs, a deterministic
workload served over loopback produces byte-identical outputs and an
identical round-clock report (see ``benchmarks/bench_async_serve.py``).
"""

from repro.serve.client import (
    ServeConnection,
    run_closed_loop,
    run_open_loop,
    serve_workload_over_loopback,
)
from repro.serve.protocol import array_digest, decode_message, encode_message
from repro.serve.server import AsyncPadeServer

__all__ = [
    "AsyncPadeServer",
    "ServeConnection",
    "run_closed_loop",
    "run_open_loop",
    "serve_workload_over_loopback",
    "array_digest",
    "encode_message",
    "decode_message",
]
