"""Asyncio serving front-end: :class:`AsyncPadeServer`.

One engine task drives :meth:`ContinuousScheduler.step` — the *same*
round implementation :meth:`PadeEngine.serve` runs in-process — so the
schedule a workload gets over the socket is identical to the one it gets
in-process.  Everything wall-clock lives out here: arrivals are stamped
when a submit is read off the socket, admissions when the scheduler's
timed event trace records them, first tokens when the scheduler's
``token_sink`` fires, finishes when the done message is built.  All
marks come from ``time.perf_counter()`` (monotonic — NTP adjustments
cannot produce negative latencies) relative to one server epoch.

Flow control, cancellation, shutdown:

* **Backpressure** — accepted submits wait in a bounded queue the engine
  loop drains at round boundaries; a submit past ``queue_limit`` is
  rejected with ``overloaded`` instead of buffering without bound.
  Requests that could never fit the token budget are rejected up front
  (``too-large``) via :meth:`ContinuousScheduler.fits_budget`.
* **Cancellation** — a ``cancel`` message or a client disconnect marks
  the request via :meth:`ContinuousScheduler.cancel`; the next round
  boundary aborts it (blocks, staging and prefix refs freed) and the
  result surfaces ``abort_reason="cancelled"``.
* **Shutdown** — a ``shutdown`` message stops new admissions, drains
  everything in flight, then answers with ``shutdown_ack`` carrying the
  serving report and the pool-leak counter (0 on a clean run).

``start_barrier`` holds the engine loop until that many submits are
queued before the first round runs — the deterministic-replay mode the
parity benchmark uses (every request is in the scheduler before round 0,
exactly like a batch :meth:`PadeEngine.serve` call).
"""

from __future__ import annotations

import argparse
import asyncio
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.engine.scheduler import ContinuousScheduler
from repro.eval.serving_metrics import (
    summarize_serving,
    timing_from_result,
    with_wall_clock,
)
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    array_digest,
    decode_message,
    decode_request,
    encode_array,
    encode_message,
    result_digests,
)

__all__ = ["AsyncPadeServer", "main"]


class _Connection:
    """One client: its writer, the ids it owns, its outbox."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.owned: Set[str] = set()
        self.outbox: Deque[bytes] = deque()
        self.alive = True


class AsyncPadeServer:
    def __init__(
        self,
        engine,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_limit: int = 64,
        start_barrier: int = 0,
        **scheduler_kwargs,
    ) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.engine = engine
        self.host = host
        self.port = port
        self.queue_limit = int(queue_limit)
        self.start_barrier = int(start_barrier)
        self.scheduler = ContinuousScheduler(engine, **scheduler_kwargs)
        self.scheduler.token_sink = self._on_token
        self.results: Dict[str, object] = {}
        self.epoch = time.perf_counter()
        self._accept_queue: Deque[Tuple[dict, _Connection]] = deque()
        self._connections: List[_Connection] = []
        self._owners: Dict[str, _Connection] = {}
        self._wall: Dict[str, Dict[str, float]] = {}
        self._done_sent: Set[str] = set()
        self._events_seen = 0
        self._started = False
        self._draining = False
        self._shutdown_conns: List[_Connection] = []
        self._wake = asyncio.Event()
        self._server: Optional[asyncio.base_events.Server] = None
        self._engine_task: Optional[asyncio.Task] = None
        self.closed = asyncio.Event()

    # ------------------------------------------------------------------
    def _now_ms(self) -> float:
        return (time.perf_counter() - self.epoch) * 1000.0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.results = self.scheduler.start()
        self._engine_task = asyncio.create_task(self._engine_loop())

    async def wait_closed(self) -> None:
        await self.closed.wait()

    async def stop(self) -> None:
        """Force shutdown (the graceful path is the ``shutdown`` message)."""
        self._draining = True
        self._wake.set()
        await self.closed.wait()

    def leaked_blocks(self) -> int:
        pool = self.scheduler.pool
        return 0 if pool is None else int(pool.used_block_count)

    # ------------------------------------------------------------------
    def timings(self):
        """Round-clock timings with the measured wall marks stamped on."""
        out = []
        for rid, res in self.results.items():
            wall = self._wall.get(rid, {})
            out.append(
                with_wall_clock(
                    timing_from_result(res),
                    arrival_ms=wall.get("arrival"),
                    admit_ms=wall.get("admit"),
                    first_token_ms=wall.get("first_token"),
                    finish_ms=wall.get("finish"),
                )
            )
        return out

    def report(self) -> Dict[str, float]:
        """The serving report over everything finished so far: the exact
        round-clock report the in-process path produces, plus the
        measured ``wall_*_ms`` latency block."""
        scheduler = self.scheduler
        pool = scheduler.pool
        return summarize_serving(
            self.timings(),
            occupancy=scheduler.occupancy,
            token_budget=pool.token_budget if pool is not None else scheduler.token_budget,
            scheduler=scheduler,
        )

    # ------------------------------------------------------------------
    def _send(self, conn: _Connection, msg: Dict) -> None:
        if conn.alive:
            conn.outbox.append(encode_message(msg))

    def _on_token(self, request_id: str, step: int, output) -> None:
        wall = self._wall.setdefault(request_id, {})
        if "first_token" not in wall:
            now = self._now_ms()
            # The admit event is only scanned after step() returns; a
            # request admitted and streamed in the same round must still
            # read admit <= first_token on the wall clock.
            wall.setdefault("admit", now)
            wall["first_token"] = now
        conn = self._owners.get(request_id)
        if conn is not None and conn.alive:
            self._send(
                conn,
                {
                    "type": "token",
                    "request_id": request_id,
                    "step": step,
                    "digest": array_digest(output),
                    "output": encode_array(output),
                },
            )

    def _stamp_admits(self) -> None:
        events = self.scheduler.events
        while self._events_seen < len(events):
            _, event, ids = events[self._events_seen]
            self._events_seen += 1
            if event in ("admit", "prefill"):
                for rid in ids:
                    self._wall.setdefault(rid, {}).setdefault("admit", self._now_ms())

    def _dispatch_done(self) -> None:
        for rid, res in self.results.items():
            if rid in self._done_sent:
                continue
            self._done_sent.add(rid)
            self._wall.setdefault(rid, {})["finish"] = self._now_ms()
            conn = self._owners.get(rid)
            if conn is None or not conn.alive:
                continue  # orphaned by a disconnect; the result stands
            msg = {
                "type": "done",
                "request_id": rid,
                "status": res.status,
                "abort_reason": res.abort_reason,
                "decode_tokens": int(res.decode_outputs.shape[1]),
                "preemptions": int(res.preemptions),
                "timing": {
                    "arrival_time": res.arrival_time,
                    "admit_time": res.admit_time,
                    "first_token_time": res.first_token_time,
                    "finish_time": res.finish_time,
                },
                "wall": dict(self._wall[rid]),
            }
            msg.update(result_digests(res))
            self._send(conn, msg)

    async def _flush_outboxes(self) -> None:
        for conn in self._connections:
            if not conn.alive or not conn.outbox:
                continue
            data = b"".join(conn.outbox)
            conn.outbox.clear()
            try:
                conn.writer.write(data)
                await conn.writer.drain()
            except (ConnectionError, RuntimeError):
                self._drop_connection(conn)

    def _drop_connection(self, conn: _Connection) -> None:
        """Map a client disconnect onto the round-boundary abort path."""
        if not conn.alive:
            return
        conn.alive = False
        conn.outbox.clear()
        for rid in conn.owned:
            if rid not in self._done_sent:
                self.scheduler.cancel(rid)
        self._wake.set()

    # ------------------------------------------------------------------
    def _barrier_open(self) -> bool:
        if self._started or self._draining:
            return True
        if len(self._accept_queue) >= self.start_barrier:
            self._started = True
            return True
        return False

    def _drain_accepts(self) -> int:
        """Hand accepted submits to the scheduler (round-boundary work)."""
        if not self._barrier_open():
            return 0
        drained = 0
        while self._accept_queue:
            msg, conn = self._accept_queue.popleft()
            arrival = msg.get("arrival")
            request = decode_request(
                msg["request"],
                arrival_time=self.scheduler.time if arrival == "now" else arrival,
            )
            self.scheduler.submit(request)
            drained += 1
        return drained

    def _on_submit(self, conn: _Connection, msg: Dict) -> None:
        rid = str(msg["request"]["request_id"])
        if self._draining:
            self._send(conn, {"type": "rejected", "request_id": rid, "error": "shutting-down"})
            return
        if rid in self._owners:
            self._send(conn, {"type": "rejected", "request_id": rid, "error": "duplicate"})
            return
        if len(self._accept_queue) >= self.queue_limit:
            self._send(conn, {"type": "rejected", "request_id": rid, "error": "overloaded"})
            return
        probe = decode_request(msg["request"])
        if not self.scheduler.fits_budget(probe):
            self._send(conn, {"type": "rejected", "request_id": rid, "error": "too-large"})
            return
        self._owners[rid] = conn
        conn.owned.add(rid)
        self._wall.setdefault(rid, {})["arrival"] = self._now_ms()
        self._accept_queue.append((msg, conn))
        self._send(conn, {"type": "accepted", "request_id": rid})
        self._wake.set()

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        self._connections.append(conn)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                msg = decode_message(line)
                kind = msg["type"]
                if kind == "submit":
                    self._on_submit(conn, msg)
                elif kind == "cancel":
                    self.scheduler.cancel(str(msg["request_id"]))
                    self._wake.set()
                elif kind == "shutdown":
                    self._draining = True
                    self._shutdown_conns.append(conn)
                    self._wake.set()
                elif kind == "stats":
                    self._send(
                        conn,
                        {
                            "type": "stats",
                            "load": self.scheduler.load_stats(),
                            "accept_queued": len(self._accept_queue),
                            "served": len(self.results),
                            # Prefix chain keys whose blocks the pool has
                            # recycled since the last poll — the cluster
                            # router unindexes them so dropped prefixes
                            # stop attracting affinity routes (hex, since
                            # the wire format is JSON).
                            "evicted_prefix_keys": [
                                key.hex()
                                for key in self.scheduler.drain_evicted_prefix_keys()
                            ],
                        },
                    )
                elif kind == "barrier":
                    # Re-arm the start barrier at runtime: the cluster
                    # front-end spawns replay-mode workers with an
                    # unreachable barrier, routes every submit, then
                    # lowers each replica's barrier to its routed count
                    # so all replicas start their round 0 fully loaded.
                    self.start_barrier = int(msg.get("count", 0))
                    self._send(conn, {"type": "barrier_ack", "count": self.start_barrier})
                    self._wake.set()
                else:
                    self._send(conn, {"type": "error", "error": f"unknown type {kind!r}"})
                await self._flush_outboxes()
        except (ConnectionError, ValueError):
            pass
        finally:
            self._drop_connection(conn)

    # ------------------------------------------------------------------
    async def _engine_loop(self) -> None:
        try:
            while True:
                drained = self._drain_accepts()
                progressed = self.scheduler.step()
                self._stamp_admits()
                self._dispatch_done()
                await self._flush_outboxes()
                if progressed or drained:
                    # Yield between rounds so submits/cancels land at the
                    # next round boundary instead of after the whole run.
                    await asyncio.sleep(0)
                    continue
                if self._draining and not self._accept_queue:
                    break
                await self._wake.wait()
                self._wake.clear()
            self.scheduler.finish()
            ack = {
                "type": "shutdown_ack",
                "served": len(self.results),
                "leaked_blocks": self.leaked_blocks(),
                "report": self.report() if self.results else {},
            }
            for conn in self._shutdown_conns:
                self._send(conn, ack)
            await self._flush_outboxes()
        finally:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            for conn in self._connections:
                if conn.alive:
                    conn.alive = False
                    try:
                        conn.writer.close()
                    except RuntimeError:
                        pass
            self.closed.set()


async def _amain(args) -> int:
    from repro.core.config import PadeConfig
    from repro.engine import PadeEngine

    engine = PadeEngine(PadeConfig.standard(), policy=args.attention)
    server = AsyncPadeServer(
        engine,
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        start_barrier=args.start_barrier,
        max_active=args.max_active,
        token_budget=args.budget,
        block_size=args.block_size,
        policy=args.policy,
        prefix_sharing=args.prefix_sharing,
        draft_policy=args.draft_policy,
        spec_accept_tol=args.spec_accept_tol,
    )
    await server.start()
    print(f"serving on {server.host}:{server.port}")
    await server.wait_closed()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Standalone async PADE server.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--queue-limit", type=int, default=64)
    parser.add_argument("--start-barrier", type=int, default=0)
    parser.add_argument("--max-active", type=int, default=4)
    parser.add_argument("--prefix-sharing", action="store_true")
    parser.add_argument("--budget", type=int, default=1536)
    parser.add_argument("--block-size", type=int, default=16)
    parser.add_argument("--policy", default="fcfs")
    parser.add_argument("--attention", default="pade")
    parser.add_argument("--draft-policy", default="streaming-llm")
    parser.add_argument("--spec-accept-tol", type=float, default=0.05)
    args = parser.parse_args(argv)
    return asyncio.run(_amain(args))


if __name__ == "__main__":
    raise SystemExit(main())
