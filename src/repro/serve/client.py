"""Clients for the async serving front-end: a connection wrapper and the
closed-loop / open-loop load generators.

* :class:`ServeConnection` — one socket to an :class:`AsyncPadeServer`;
  a background reader routes per-token streams and done/ack messages to
  awaitable futures, so callers just ``await conn.result(rid)``.
* :func:`run_closed_loop` — N workers, each submit → await done → next
  request (``arrival="now"``): concurrency is fixed, arrival rate adapts
  to service rate.  The classic saturation load.
* :func:`run_open_loop` — submits every request up front with its own
  arrival schedule (the workload's round-clock arrival times are
  honored by the scheduler); optionally paced on the wall clock.
  Arrival rate is fixed, concurrency floats — the tail-latency load.
* :func:`serve_workload_over_loopback` — spin a server up in-process,
  push a workload through it, return the per-request done messages and
  the server (scheduler, report, leak counters all inspectable).  With
  ``barrier=True`` every submit lands before round 0 runs, which makes
  the socket path's schedule — and therefore its outputs and round-clock
  report — identical to a batch :meth:`PadeEngine.serve` call.

All wall timing uses ``time.perf_counter()``; nothing here reads the
NTP-adjustable wall clock.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Sequence

from repro.serve.protocol import (
    MAX_LINE_BYTES,
    decode_message,
    encode_message,
    encode_request,
)
from repro.serve.server import AsyncPadeServer

__all__ = [
    "ServeConnection",
    "run_closed_loop",
    "run_open_loop",
    "serve_workload_over_loopback",
]


class ServeConnection:
    """One client connection with a background message router."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._accept: Dict[str, asyncio.Future] = {}
        self._done: Dict[str, asyncio.Future] = {}
        self.tokens: Dict[str, List[dict]] = {}
        self._shutdown_ack: asyncio.Future = asyncio.get_running_loop().create_future()
        self._router = asyncio.create_task(self._route())

    @classmethod
    async def open(cls, host: str, port: int) -> "ServeConnection":
        reader, writer = await asyncio.open_connection(host, port, limit=MAX_LINE_BYTES)
        return cls(reader, writer)

    async def _route(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                msg = decode_message(line)
                kind = msg["type"]
                rid = msg.get("request_id")
                if kind in ("accepted", "rejected"):
                    fut = self._accept.pop(rid, None)
                    if fut is not None and not fut.done():
                        fut.set_result(msg)
                elif kind == "token":
                    self.tokens.setdefault(rid, []).append(msg)
                elif kind == "done":
                    msg["tokens"] = self.tokens.get(rid, [])
                    fut = self._done.get(rid)
                    if fut is not None and not fut.done():
                        fut.set_result(msg)
                elif kind == "shutdown_ack" and not self._shutdown_ack.done():
                    self._shutdown_ack.set_result(msg)
        except (ConnectionError, asyncio.IncompleteReadError, ValueError):
            pass
        finally:
            for fut in list(self._accept.values()) + list(self._done.values()):
                if not fut.done():
                    fut.set_exception(ConnectionError("server connection closed"))

    async def submit(self, request, arrival=None) -> dict:
        """Send one request; returns the ``accepted``/``rejected`` reply.

        ``arrival="now"`` stamps the round-clock arrival server-side at
        pickup; ``None`` keeps ``request.arrival_time``.
        """
        rid = request.request_id
        loop = asyncio.get_running_loop()
        self._accept[rid] = loop.create_future()
        self._done.setdefault(rid, loop.create_future())
        msg = {"type": "submit", "request": encode_request(request)}
        if arrival is not None:
            msg["arrival"] = arrival
        self._writer.write(encode_message(msg))
        await self._writer.drain()
        reply = await self._accept[rid]
        if reply["type"] == "rejected":
            self._done.pop(rid, None)
        return reply

    async def result(self, request_id: str) -> dict:
        """Await the done message (token stream attached as ``tokens``)."""
        fut = self._done.get(request_id)
        if fut is None:
            raise KeyError(f"request {request_id!r} was never submitted here")
        return await fut

    async def cancel(self, request_id: str) -> None:
        self._writer.write(encode_message({"type": "cancel", "request_id": request_id}))
        await self._writer.drain()

    async def shutdown(self) -> dict:
        """Graceful drain; resolves with the ``shutdown_ack`` (report +
        leak counter) once everything in flight has finished."""
        self._writer.write(encode_message({"type": "shutdown"}))
        await self._writer.drain()
        return await self._shutdown_ack

    async def close(self) -> None:
        self._router.cancel()
        try:
            await self._router
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except ConnectionError:
            pass


async def run_closed_loop(
    host: str,
    port: int,
    requests: Sequence,
    concurrency: int = 4,
) -> Dict[str, dict]:
    """Closed-loop load: ``concurrency`` workers, submit → await → next."""
    conn = await ServeConnection.open(host, port)
    queue: asyncio.Queue = asyncio.Queue()
    for request in requests:
        queue.put_nowait(request)
    dones: Dict[str, dict] = {}

    async def worker() -> None:
        while True:
            try:
                request = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            reply = await conn.submit(request, arrival="now")
            if reply["type"] == "accepted":
                dones[request.request_id] = await conn.result(request.request_id)
            else:
                dones[request.request_id] = reply

    try:
        await asyncio.gather(*(worker() for _ in range(max(1, concurrency))))
    finally:
        await conn.close()
    return dones


async def run_open_loop(
    host: str,
    port: int,
    requests: Sequence,
    pace_s_per_round: float = 0.0,
) -> Dict[str, dict]:
    """Open-loop load: every request keeps its own arrival schedule.

    Submits in arrival order; the scheduler honors the round-clock
    ``arrival_time`` carried by each request.  ``pace_s_per_round``
    additionally paces the *wall-clock* submission (seconds per round
    unit, 0 = submit as fast as the socket allows).
    """
    conn = await ServeConnection.open(host, port)
    ordered = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
    start = time.perf_counter()
    accepted: List[str] = []
    dones: Dict[str, dict] = {}
    try:
        for request in ordered:
            if pace_s_per_round > 0:
                due = start + request.arrival_time * pace_s_per_round
                delay = due - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
            reply = await conn.submit(request)
            if reply["type"] == "accepted":
                accepted.append(request.request_id)
            else:
                dones[request.request_id] = reply
        for rid in accepted:
            dones[rid] = await conn.result(rid)
    finally:
        await conn.close()
    return dones


def serve_workload_over_loopback(
    engine,
    requests: Sequence,
    barrier: bool = True,
    concurrency: int = 4,
    queue_limit: Optional[int] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    pace_s_per_round: float = 0.0,
    **scheduler_kwargs,
):
    """Serve ``requests`` through a loopback :class:`AsyncPadeServer`.

    Returns ``(dones, ack, server)``: the per-request done messages, the
    ``shutdown_ack`` (serving report + leaked-block counter), and the
    (stopped) server for deeper inspection.  ``barrier=True`` holds the
    engine loop until every request is submitted, making the run a
    deterministic replay of the equivalent in-process
    :meth:`PadeEngine.serve` call; ``barrier=False`` serves live with a
    closed-loop client at ``concurrency``, or — with
    ``pace_s_per_round`` > 0 — with the open-loop client replaying each
    request's arrival schedule against real wall-clock time.
    """
    limit = queue_limit if queue_limit is not None else max(len(requests), 1)

    async def _run():
        server = AsyncPadeServer(
            engine,
            host=host,
            port=port,
            start_barrier=len(requests) if barrier else 0,
            queue_limit=limit,
            **scheduler_kwargs,
        )
        await server.start()
        try:
            if barrier:
                dones = await run_open_loop(server.host, server.port, requests)
            elif pace_s_per_round > 0:
                dones = await run_open_loop(
                    server.host, server.port, requests,
                    pace_s_per_round=pace_s_per_round,
                )
            else:
                dones = await run_closed_loop(
                    server.host, server.port, requests, concurrency=concurrency
                )
            conn = await ServeConnection.open(server.host, server.port)
            try:
                ack = await conn.shutdown()
            finally:
                await conn.close()
        finally:
            await server.stop()
        return dones, ack, server

    return asyncio.run(_run())
