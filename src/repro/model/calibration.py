"""Calibrate synthetic attention profiles to target sparsity statistics.

The reproduction's Table II / Fig. 16(b) fidelity rests on the synthetic
score distribution hitting the right (keep fraction, lost mass) pair at the
paper's operating points.  This module automates that calibration: given
targets, it searches the profile's cluster geometry so a user can re-anchor
the substrate to a different regime (e.g. the paper's denser keep ≈ 0.3
regime discussed in EXPERIMENTS.md note 1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from repro.attention.dense import softmax
from repro.core.config import PadeConfig
from repro.core.pade_attention import pade_attention
from repro.model.synthetic import AttentionProfile, synthesize_qkv

__all__ = ["CalibrationTarget", "measure_profile", "calibrate_profile"]


@dataclass(frozen=True)
class CalibrationTarget:
    """Desired operating point at a given α."""

    alpha: float = 0.6
    keep_fraction: float = 0.10
    lost_mass: float = 0.01
    seq_len: int = 1024
    head_dim: int = 64


def measure_profile(
    profile: AttentionProfile,
    target: CalibrationTarget,
    seed: int = 7,
) -> Tuple[float, float]:
    """Measured (keep fraction, lost mass) of a profile at the target's α."""
    rng = np.random.default_rng(seed)
    q, k, v = synthesize_qkv(8, target.seq_len, target.head_dim, profile, rng)
    res = pade_attention(q, k, v, PadeConfig(alpha=target.alpha))
    logits = (res.q_int.data @ res.k_int.data.T) * res.logit_scale
    probs = softmax(logits, axis=-1)
    lost = float(np.where(res.retained, 0.0, probs).sum(axis=-1).mean())
    return 1.0 - res.sparsity, lost


def calibrate_profile(
    target: CalibrationTarget,
    base: Optional[AttentionProfile] = None,
    iterations: int = 6,
    seed: int = 7,
) -> AttentionProfile:
    """Search cluster size and width toward the target operating point.

    Coordinate descent on two knobs: the relevant-set size (``num_heavy`` —
    scales the keep fraction) and ``cluster_width`` (scales the lost mass at
    fixed guard).  Coarse by design: the goal is landing within ~25% of the
    target, enough to re-anchor the proxy-accuracy suite.
    """
    profile = base or AttentionProfile()
    for _ in range(iterations):
        keep, lost = measure_profile(profile, target, seed)
        # Knob 1: relevant-set size ∝ keep fraction.
        if keep > 0:
            ratio = np.clip(target.keep_fraction / keep, 0.5, 2.0)
            new_heavy = int(np.clip(round(profile.num_heavy * ratio), 1, target.seq_len // 2))
            new_local = int(np.clip(round(profile.local_width * ratio), 4, target.seq_len // 2))
            profile = replace(profile, num_heavy=new_heavy, local_width=new_local)
        # Knob 2: cluster width vs lost mass (wider cluster → guard cuts more).
        keep, lost = measure_profile(profile, target, seed)
        if lost > 0 and target.lost_mass > 0:
            width_ratio = np.clip((target.lost_mass / max(lost, 1e-5)) ** 0.3, 0.8, 1.25)
            profile = replace(
                profile, cluster_width=float(np.clip(profile.cluster_width * width_ratio, 0.5, 8.0))
            )
    return profile
