"""Synthetic QKV generators with controlled attention structure.

Real LLM attention maps are not gaussian: a small *relevant set* — initial
(sink) tokens, a local recency window, and input-dependent heavy hitters —
carries almost all softmax mass, sitting several logits above a broad
background (StreamingLLM, MInference; the locality prior PADE's head-tail
update exploits, §IV-C).  Since the offline environment has no pretrained
models, this module synthesizes Q/K/V whose score matrix has exactly that
structure, with the cluster/background geometry exposed as parameters:

* background logits ~ N(0, ``noise_std``);
* relevant logits ~ ``separation`` − depth, depth spread over
  ``cluster_width`` logits (sinks shallowest, local window deepening with
  distance, heavy hitters uniform).

The tensor construction: draw Q at random with full row rank, choose the
target logits ``L`` explicitly, and solve ``K`` from ``Q K^T = L·sqrt(H)``
via least squares (exact when the query block fits in the head dimension).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["AttentionProfile", "PROFILE_PRESETS", "target_logits", "synthesize_qkv"]


@dataclass(frozen=True)
class AttentionProfile:
    """Statistical shape of the synthesized attention score matrix.

    Attributes
    ----------
    noise_std:
        Std of the unstructured background logits.
    separation:
        Logit height of the relevant cluster's top above the background mean.
        The cluster-to-background *gap* is what makes guarded filtering both
        safe and effective; shrinking it emulates harder (more uniform)
        distributions such as QAT activations (Fig. 26a).
    cluster_width:
        Logit spread of the relevant cluster.  The guard ``alpha * radius``
        cuts into this band, so accuracy-vs-alpha behaviour (Fig. 16b) is
        governed by this width.
    sink_tokens:
        Initial tokens placed at the top of the cluster.
    local_width:
        Recency window length; depth grows with distance into the window.
    num_heavy:
        Input-dependent heavy hitters per row, uniform over the cluster.
    peakedness:
        Global logit multiplier (temperature⁻¹), kept at 1 for presets and
        used by sweeps.
    """

    noise_std: float = 1.0
    separation: float = 12.0
    cluster_width: float = 2.6
    sink_tokens: int = 2
    local_width: int = 96
    num_heavy: int = 24
    peakedness: float = 1.0

    def scaled(self, peakedness: float) -> "AttentionProfile":
        """Copy with a different global peakedness."""
        return replace(self, peakedness=peakedness)


#: Presets: NLP decoder layers show a tall, narrow relevant cluster; CV
#: encoders are flatter (lower sparsity, Fig. 14); "uniform" emulates the
#: QAT-flattened distributions of Fig. 26(a).
PROFILE_PRESETS: Dict[str, AttentionProfile] = {
    "nlp": AttentionProfile(),
    "nlp-long": AttentionProfile(local_width=160, num_heavy=32, separation=13.0),
    "cv": AttentionProfile(
        separation=8.0, cluster_width=2.8, sink_tokens=1, local_width=48, num_heavy=120
    ),
    "uniform": AttentionProfile(separation=4.0, cluster_width=5.0, num_heavy=64),
}


def target_logits(
    num_queries: int,
    num_keys: int,
    profile: AttentionProfile,
    rng: np.random.Generator,
    query_offset: Optional[int] = None,
) -> np.ndarray:
    """Draw a structured logit matrix ``(P, S)`` per the profile."""
    offset = num_keys - num_queries if query_offset is None else query_offset
    logits = rng.normal(0.0, profile.noise_std, size=(num_queries, num_keys))
    width = max(profile.cluster_width, 1e-6)
    for i in range(num_queries):
        pos = offset + i
        jitter = rng.normal(0.0, 0.3, size=num_keys)
        # Sinks: shallowest part of the cluster.
        sinks = np.arange(min(profile.sink_tokens, num_keys))
        logits[i, sinks] = profile.separation - rng.uniform(0, 0.5, sinks.size) + jitter[sinks]
        # Local window: depth grows sublinearly with distance.
        if profile.local_width:
            start = max(0, pos - profile.local_width + 1)
            stop = min(pos + 1, num_keys)
            if stop > start:
                local = np.arange(start, stop)
                dist = pos - local
                depth = width * (dist / profile.local_width) ** 0.8
                depth += rng.uniform(0, 0.4, local.size)
                logits[i, local] = profile.separation - depth + jitter[local]
        # Heavy hitters: uniform over the cluster band.
        if profile.num_heavy:
            hh = rng.choice(num_keys, size=min(profile.num_heavy, num_keys), replace=False)
            logits[i, hh] = profile.separation - rng.uniform(0, width, hh.size) + jitter[hh]
    return logits * profile.peakedness


def synthesize_qkv(
    num_queries: int,
    num_keys: int,
    head_dim: int,
    profile: Optional[AttentionProfile] = None,
    rng: Optional[np.random.Generator] = None,
    query_offset: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Synthesize ``(Q, K, V)`` whose scaled logits match the profile.

    The construction guarantees ``(Q K^T)/sqrt(H)`` equals the drawn target
    logits exactly when ``num_queries <= head_dim`` (the common case: PADE
    processes 8 queries per head); larger batches get the least-squares fit,
    which preserves the structure statistically.
    """
    profile = profile or PROFILE_PRESETS["nlp"]
    rng = rng or np.random.default_rng(0)
    scale = np.sqrt(head_dim)

    q = rng.normal(size=(num_queries, head_dim))
    logits = target_logits(num_queries, num_keys, profile, rng, query_offset=query_offset)
    # Solve K so that q @ K.T ≈ logits * scale (exact when P <= H).
    kt, *_ = np.linalg.lstsq(q, logits * scale, rcond=None)
    k = kt.T  # (S, H)
    v = rng.normal(size=(num_keys, head_dim))

    # Normalize magnitudes into an activation-like range (balanced RMS)
    # while preserving the Q·K structure: scale K and Q inversely.
    q_rms = float(np.sqrt(np.mean(q * q))) or 1.0
    k_rms = float(np.sqrt(np.mean(k * k))) or 1.0
    gamma = np.sqrt(k_rms / q_rms)
    return q * gamma, k / gamma, v
