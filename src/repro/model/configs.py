"""Architecture presets for the models the paper evaluates (§VI-A).

Only the attention-relevant dimensions matter to PADE: number of heads,
KV-head grouping (MHA vs GQA), head dimension, layer count, and the typical
sequence lengths of the paired tasks.  Parameter counts are retained for
reporting only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["ModelConfig", "MODEL_PRESETS", "get_model"]


@dataclass(frozen=True)
class ModelConfig:
    """Attention-relevant shape of one evaluated model."""

    name: str
    num_layers: int
    num_heads: int
    num_kv_heads: int
    head_dim: int
    modality: str  # "nlp" or "cv"
    params_b: float  # billions, for reporting

    @property
    def hidden_dim(self) -> int:
        return self.num_heads * self.head_dim

    @property
    def gqa_group(self) -> int:
        """Queries sharing one KV head (1 = MHA)."""
        return self.num_heads // self.num_kv_heads

    @property
    def is_gqa(self) -> bool:
        return self.num_kv_heads < self.num_heads

    def attention_flops(self, seq_len: int, num_queries: int | None = None) -> int:
        """Dense attention MACs for one forward pass over all layers/heads.

        ``num_queries`` defaults to ``seq_len`` (prefill); decode passes 1.
        """
        p = seq_len if num_queries is None else num_queries
        per_head = 2 * p * seq_len * self.head_dim  # QK^T + PV
        return per_head * self.num_heads * self.num_layers

    def kv_bytes(self, seq_len: int, bits: int = 8) -> int:
        """KV-cache footprint across layers at the given element width."""
        per_layer = 2 * seq_len * self.num_kv_heads * self.head_dim
        return per_layer * self.num_layers * bits // 8


MODEL_PRESETS: Dict[str, ModelConfig] = {
    "llama2-7b": ModelConfig("llama2-7b", 32, 32, 32, 128, "nlp", 7.0),
    "llama3-8b": ModelConfig("llama3-8b", 32, 32, 8, 128, "nlp", 8.0),
    "opt-1b3": ModelConfig("opt-1b3", 24, 32, 32, 64, "nlp", 1.3),
    "bloom-1b7": ModelConfig("bloom-1b7", 24, 16, 16, 128, "nlp", 1.7),
    "qwen-7b": ModelConfig("qwen-7b", 32, 32, 32, 128, "nlp", 7.0),
    "vit-l/16": ModelConfig("vit-l/16", 24, 16, 16, 64, "cv", 0.3),
    "pvt": ModelConfig("pvt", 16, 8, 8, 64, "cv", 0.06),
}


def get_model(name: str) -> ModelConfig:
    """Look up a preset by name (case-insensitive)."""
    key = name.lower()
    if key not in MODEL_PRESETS:
        known = ", ".join(sorted(MODEL_PRESETS))
        raise KeyError(f"unknown model {name!r}; known models: {known}")
    return MODEL_PRESETS[key]
