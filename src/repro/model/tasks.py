"""The 22-benchmark suite and the proxy accuracy model (Table II substrate).

Offline we cannot run ROUGE/MMLU/ImageNet on real checkpoints, so accuracy
is modelled (DESIGN.md §2): sparse attention degrades a task exactly through
the softmax probability mass it discards, so the proxy is

    metric(config) = metric(INT8 baseline) − sensitivity × lost_mass(config)

(sign flipped for perplexity, where higher is worse).  ``lost_mass`` is
*measured* by running the real PADE pipeline on the synthetic workload for
the task's model/sequence length; the per-family sensitivities are fixed
constants, so orderings and trends (PADE-S ≈ INT8, PADE-A ≈ 1% lower, the
Fig. 16b α-sweep shape) emerge from the algorithm rather than being baked in.
MXINT8/FP16/INT8 reference values are the paper's Table II constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.attention.dense import softmax
from repro.core.config import PadeConfig
from repro.core.pade_attention import pade_attention
from repro.model.configs import ModelConfig, get_model
from repro.model.synthetic import PROFILE_PRESETS, synthesize_qkv

__all__ = [
    "Task",
    "TASKS",
    "get_task",
    "lost_attention_mass",
    "TaskScore",
    "evaluate_task",
    "SENSITIVITY",
]


@dataclass(frozen=True)
class Task:
    """One (model, dataset) benchmark of Table II.

    ``mxint8`` / ``fp16`` / ``int8`` are the paper's reported reference
    values; ``metric`` ∈ {"rouge1", "acc", "ppl"}; ``higher_is_better``
    follows from the metric.
    """

    name: str
    model: str
    metric: str
    seq_len: int
    mxint8: float
    fp16: float
    int8: float
    family: str  # generation | language_modeling | reasoning | classification

    @property
    def higher_is_better(self) -> bool:
        return self.metric != "ppl"


#: Accuracy-points lost per unit of discarded softmax mass, per task family.
#: Generation is most sensitive (matches the paper's MBPP-vs-MMLU finding in
#: §VI-D); perplexity moves in raw PPL units.
SENSITIVITY: Dict[str, float] = {
    "generation": 14.0,
    "language_modeling": 2.0,
    "reasoning": 9.0,
    "classification": 6.0,
}


def _t(name, model, metric, seq, mx, fp, i8, family) -> Task:
    return Task(name, model, metric, seq, mx, fp, i8, family)


#: The 22 benchmarks of Table II (values transcribed from the paper).
TASKS: List[Task] = [
    _t("dolly", "llama2-7b", "rouge1", 15_000, 36.5, 36.4, 36.4, "generation"),
    _t("wikilingua", "llama2-7b", "rouge1", 2_000, 39.3, 39.1, 38.9, "generation"),
    _t("mbpp", "llama2-7b", "acc", 1_000, 17.5, 17.5, 17.2, "generation"),
    _t("wikitext2", "llama2-7b", "ppl", 2_000, 5.63, 5.71, 5.73, "language_modeling"),
    _t("mmlu", "llama2-7b", "acc", 500, 35.2, 35.1, 34.7, "reasoning"),
    _t("winogrande", "llama2-7b", "acc", 250, 69.8, 69.4, 69.3, "reasoning"),
    _t("dolly", "llama3-8b", "rouge1", 15_000, 40.9, 40.8, 40.7, "generation"),
    _t("wikilingua", "llama3-8b", "rouge1", 2_000, 43.6, 42.7, 42.7, "generation"),
    _t("mbpp", "llama3-8b", "acc", 1_000, 23.3, 21.8, 21.6, "generation"),
    _t("wikitext2", "llama3-8b", "ppl", 2_000, 5.01, 5.11, 5.13, "language_modeling"),
    _t("mmlu", "llama3-8b", "acc", 500, 42.2, 41.2, 40.9, "reasoning"),
    _t("winogrande", "llama3-8b", "acc", 250, 75.1, 74.2, 73.7, "reasoning"),
    _t("wikilingua", "opt-1b3", "rouge1", 2_000, 36.1, 36.2, 35.9, "generation"),
    _t("mbpp", "opt-1b3", "acc", 1_000, 11.9, 11.9, 11.6, "generation"),
    _t("wikilingua", "bloom-1b7", "rouge1", 2_000, 44.6, 44.3, 44.1, "generation"),
    _t("mbpp", "bloom-1b7", "acc", 1_000, 16.3, 16.0, 15.7, "generation"),
    _t("wikilingua", "qwen-7b", "rouge1", 2_000, 46.8, 46.6, 46.4, "generation"),
    _t("mbpp", "qwen-7b", "acc", 1_000, 30.5, 30.0, 29.2, "generation"),
    _t("imagenet", "vit-l/16", "acc", 576, 85.5, 85.3, 85.3, "classification"),
    _t("vtab", "vit-l/16", "acc", 576, 72.8, 72.7, 72.5, "classification"),
    _t("imagenet", "pvt", "acc", 3_000, 89.7, 89.4, 89.3, "classification"),
    _t("vtab", "pvt", "acc", 3_000, 77.5, 77.3, 77.1, "classification"),
]


def get_task(name: str, model: str) -> Task:
    """Look up one Table II cell by (dataset, model)."""
    for task in TASKS:
        if task.name == name and task.model == model:
            return task
    raise KeyError(f"no task {name!r} for model {model!r}")


def lost_attention_mass(
    model: ModelConfig,
    seq_len: int,
    config: PadeConfig,
    rng: Optional[np.random.Generator] = None,
    num_queries: int = 8,
    seq_cap: int = 1024,
) -> float:
    """Softmax probability mass PADE's pruning discards, measured end-to-end.

    Runs the full quantize → bit-serial filter → retain pipeline on a
    synthetic workload for the model and returns the mean (over queries) of
    the dense softmax mass carried by the pruned keys.  Sequences are capped
    at ``seq_cap`` for tractability — mass is governed by the score profile,
    which is length-stationary by construction.
    """
    rng = rng or np.random.default_rng(7)
    seq = min(seq_len, seq_cap)
    profile = PROFILE_PRESETS["cv"] if model.modality == "cv" else PROFILE_PRESETS["nlp"]
    q, k, v = synthesize_qkv(num_queries, seq, model.head_dim, profile, rng)
    res = pade_attention(q, k, v, config)
    # Dense probabilities on the same quantized logits so the comparison
    # isolates pruning (not quantization) effects.
    logits = (res.q_int.data @ res.k_int.data.T).astype(np.float64) * res.logit_scale
    probs = softmax(logits, axis=-1)
    lost = np.where(res.retained, 0.0, probs).sum(axis=-1)
    return float(lost.mean())


@dataclass(frozen=True)
class TaskScore:
    """Proxy metric values for one task across quantization configs."""

    task: Task
    pade_standard: float
    pade_aggressive: float
    lost_mass_standard: float
    lost_mass_aggressive: float

    def as_row(self) -> Dict[str, float]:
        return {
            "MXINT8": self.task.mxint8,
            "FP16": self.task.fp16,
            "INT8": self.task.int8,
            "PADE (S)": self.pade_standard,
            "PADE (A)": self.pade_aggressive,
        }


def _apply_loss(task: Task, lost_mass: float) -> float:
    sens = SENSITIVITY[task.family]
    if task.metric == "ppl":
        return round(task.int8 + sens * lost_mass, 2)
    return round(task.int8 - sens * lost_mass, 1)


def evaluate_task(
    task: Task,
    standard: Optional[PadeConfig] = None,
    aggressive: Optional[PadeConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> TaskScore:
    """Score one Table II cell under the standard/aggressive PADE configs."""
    std = standard or PadeConfig.standard()
    agg = aggressive or PadeConfig.aggressive()
    model = get_model(task.model)
    # One deterministic workload per task, shared by both configs so the
    # standard/aggressive comparison is paired.
    seed = sum(ord(c) for c in task.name + task.model) if rng is None else None
    mass_std = lost_attention_mass(model, task.seq_len, std, np.random.default_rng(seed or 1))
    mass_agg = lost_attention_mass(model, task.seq_len, agg, np.random.default_rng(seed or 1))
    return TaskScore(
        task=task,
        pade_standard=_apply_loss(task, mass_std),
        pade_aggressive=_apply_loss(task, mass_agg),
        lost_mass_standard=mass_std,
        lost_mass_aggressive=mass_agg,
    )
