"""Transformer workload substrate.

The paper evaluates on real LLMs/ViTs; offline we substitute a controllable
substrate (see DESIGN.md §2):

* :mod:`repro.model.configs` — architecture presets matching the evaluated
  models (heads, GQA groups, head dim, layers).
* :mod:`repro.model.synthetic` — QKV generators whose attention-score
  structure (sinks, locality, heavy hitters, peakedness) is controlled
  exactly, so sparsity behaviour is reproducible.
* :mod:`repro.model.transformer` — numpy MHA/GQA attention layers with
  pluggable attention operators (dense / PADE / baselines).
* :mod:`repro.model.tasks` — the 22-benchmark suite with the proxy accuracy
  model used to regenerate Table II and Figs. 15/16.
"""

from repro.model.configs import ModelConfig, MODEL_PRESETS, get_model
from repro.model.synthetic import AttentionProfile, synthesize_qkv, PROFILE_PRESETS
from repro.model.transformer import AttentionLayer, MultiHeadAttention
from repro.model.tasks import Task, TASKS, evaluate_task, lost_attention_mass

__all__ = [
    "ModelConfig",
    "MODEL_PRESETS",
    "get_model",
    "AttentionProfile",
    "synthesize_qkv",
    "PROFILE_PRESETS",
    "AttentionLayer",
    "MultiHeadAttention",
    "Task",
    "TASKS",
    "evaluate_task",
    "lost_attention_mass",
]
