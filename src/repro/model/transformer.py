"""Minimal numpy attention layers with pluggable attention operators.

These classes give the reproduction an end-to-end "model" to run: multi-head
(or grouped-query) attention whose per-head computation can be dense
reference attention, PADE, or any baseline with the same signature.  They
also expose the per-head workload description the accelerator models consume
(sequence length, head counts, GQA sharing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.attention.dense import dense_attention
from repro.core.config import PadeConfig
from repro.core.pade_attention import PadeAttentionResult, pade_attention
from repro.model.configs import ModelConfig
from repro.model.synthetic import AttentionProfile, PROFILE_PRESETS, synthesize_qkv

__all__ = ["HeadResult", "AttentionLayer", "MultiHeadAttention", "generate_layer_qkv"]

AttentionFn = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]


@dataclass
class HeadResult:
    """Per-head output plus the PADE statistics (when PADE ran the head)."""

    output: np.ndarray
    pade: Optional[PadeAttentionResult] = None


def generate_layer_qkv(
    model: ModelConfig,
    seq_len: int,
    num_queries: Optional[int] = None,
    profile: Optional[AttentionProfile] = None,
    rng: Optional[np.random.Generator] = None,
) -> List[tuple]:
    """Synthesize per-KV-head (Q, K, V) triples for one layer.

    GQA models share one K/V across ``gqa_group`` query heads: the returned
    list has ``num_kv_heads`` entries, each ``(Q, K, V)`` with Q of shape
    ``(gqa_group * P, H)`` stacked by query head.
    """
    rng = rng or np.random.default_rng(0)
    profile = profile or (
        PROFILE_PRESETS["cv"] if model.modality == "cv" else PROFILE_PRESETS["nlp"]
    )
    p = num_queries if num_queries is not None else min(8, seq_len)
    triples = []
    for _ in range(model.num_kv_heads):
        qs = []
        k = v = None
        for _ in range(model.gqa_group):
            q_h, k_h, v_h = synthesize_qkv(p, seq_len, model.head_dim, profile, rng)
            qs.append(q_h)
            if k is None:
                k, v = k_h, v_h  # the group shares the first head's KV
        triples.append((np.vstack(qs), k, v))
    return triples


@dataclass
class AttentionLayer:
    """One attention layer: runs every (KV-)head through an operator."""

    model: ModelConfig
    config: Optional[PadeConfig] = None
    use_pade: bool = True

    def run(
        self,
        triples: List[tuple],
        dense_fn: AttentionFn = dense_attention,
    ) -> List[HeadResult]:
        """Execute all heads; returns per-head outputs and PADE stats."""
        results: List[HeadResult] = []
        for q, k, v in triples:
            if self.use_pade:
                res = pade_attention(q, k, v, self.config)
                results.append(HeadResult(output=res.output, pade=res))
            else:
                results.append(HeadResult(output=dense_fn(q, k, v)))
        return results

    def mean_sparsity(self, results: List[HeadResult]) -> float:
        vals = [r.pade.sparsity for r in results if r.pade is not None]
        return float(np.mean(vals)) if vals else 0.0


@dataclass
class MultiHeadAttention:
    """A stack of attention layers for one model preset.

    The per-layer attention profiles are perturbed slightly so layers do not
    share identical sparsity (real models vary layer-to-layer, Fig. 4c).
    """

    model: ModelConfig
    config: Optional[PadeConfig] = None
    use_pade: bool = True
    seed: int = 0
    layer_results: List[List[HeadResult]] = field(default_factory=list)

    def run_prefill(
        self, seq_len: int, num_layers: Optional[int] = None, num_queries: Optional[int] = None
    ) -> List[List[HeadResult]]:
        """Run ``num_layers`` layers (default: 4, the paper's profiling cut)."""
        layers = num_layers if num_layers is not None else min(4, self.model.num_layers)
        rng = np.random.default_rng(self.seed)
        base = PROFILE_PRESETS["cv"] if self.model.modality == "cv" else PROFILE_PRESETS["nlp"]
        self.layer_results = []
        for layer_idx in range(layers):
            peaked = base.peakedness * float(rng.uniform(0.85, 1.15))
            profile = base.scaled(peaked)
            triples = generate_layer_qkv(
                self.model, seq_len, num_queries, profile, rng
            )
            layer = AttentionLayer(self.model, self.config, self.use_pade)
            self.layer_results.append(layer.run(triples))
        return self.layer_results

    @property
    def mean_sparsity(self) -> float:
        vals = [
            r.pade.sparsity
            for layer in self.layer_results
            for r in layer
            if r.pade is not None
        ]
        return float(np.mean(vals)) if vals else 0.0
