"""Bidirectional bit sparsity (BS, paper §IV-B, Eq. 5-6).

A bit-serial dot product between an N-element query and one Key bit plane
accumulates the query entries at positions where the plane bit is 1:

    sum_j q_j * k_j^b = sum_{j : k_j^b = 1} q_j
                      = sum_j q_j  -  sum_{j : k_j^b = 0} q_j

Either side of the identity is exact, so the hardware may compute over
whichever bit value is *rarer*, bounding per-plane work to at most ⌈N/2⌉
additions — the load-balancing property BS-OOE builds on.  PADE extends this
from static weights (BBS) to runtime attention operands, so the mode decision
happens per plane at execution time (the BS scheduler of Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BidirectionalPlan", "plan_plane", "bs_partial_dot", "effective_bits"]


@dataclass(frozen=True)
class BidirectionalPlan:
    """Execution plan for one Key bit plane under bidirectional sparsity.

    Attributes
    ----------
    one_mode:
        True → accumulate query entries at bit-1 positions; False →
        accumulate at bit-0 positions and subtract from the full query sum.
    indices:
        Positions to accumulate (the rarer bit value's positions).
    effective_bits:
        Number of additions the plan performs, ``min(popcount, N - popcount)``.
    """

    one_mode: bool
    indices: np.ndarray
    effective_bits: int


def plan_plane(plane_bits: np.ndarray) -> BidirectionalPlan:
    """Choose the cheaper accumulation direction for one bit plane."""
    bits = np.asarray(plane_bits).astype(bool)
    ones = int(bits.sum())
    zeros = bits.size - ones
    if ones <= zeros:
        idx = np.flatnonzero(bits)
        return BidirectionalPlan(one_mode=True, indices=idx, effective_bits=ones)
    idx = np.flatnonzero(~bits)
    return BidirectionalPlan(one_mode=False, indices=idx, effective_bits=zeros)


def bs_partial_dot(q_row: np.ndarray, plane_bits: np.ndarray, q_sum: int | None = None) -> int:
    """Compute ``sum_j q_j * k_j^b`` via the bidirectional identity.

    ``q_sum`` (the full query sum, produced once by the hardware's Q_sum
    generator) may be passed in to avoid recomputation; it is only needed in
    0-mode.
    """
    q = np.asarray(q_row, dtype=np.int64)
    plan = plan_plane(plane_bits)
    partial = int(q[plan.indices].sum())
    if plan.one_mode:
        return partial
    total = int(q.sum()) if q_sum is None else int(q_sum)
    return total - partial


def effective_bits(plane_bits: np.ndarray) -> int:
    """Work (additions) for a plane under BS: ``min(popcount, N - popcount)``."""
    bits = np.asarray(plane_bits).astype(bool)
    ones = int(bits.sum())
    return min(ones, bits.size - ones)
