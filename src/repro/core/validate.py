"""Runtime validators for PADE's safety invariants.

A deployment integrating the fused filter can cheaply audit its decisions
(e.g. on sampled rows) against the guarantees the algorithm makes.  These
checkers are also the test suite's failure-injection oracles: corrupting a
scoreboard entry or an interval must trip them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.quant.bitplane import BitPlanes, partial_reconstruct

__all__ = ["ValidationReport", "validate_retention", "validate_partial_scores"]


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one validation pass."""

    ok: bool
    violations: List[str]

    def __bool__(self) -> bool:  # truthiness = validity
        return self.ok


def validate_retention(
    q_int: np.ndarray,
    k_int: np.ndarray,
    retained: np.ndarray,
    guard: float,
    protect: Optional[np.ndarray] = None,
    max_report: int = 10,
) -> ValidationReport:
    """Check the no-false-prune guarantee on a retention mask.

    Every (row, key) whose exact integer score is within ``guard`` of that
    row's exact maximum must be retained.  (The converse — pruning far-away
    keys — is a quality property, not a safety one, and is not enforced.)
    """
    q = np.atleast_2d(np.asarray(q_int, dtype=np.int64))
    k = np.asarray(k_int, dtype=np.int64)
    retained = np.atleast_2d(np.asarray(retained, dtype=bool))
    exact = q @ k.T
    violations: List[str] = []
    for i in range(q.shape[0]):
        must_keep = exact[i] >= exact[i].max() - guard
        if protect is not None:
            must_keep |= np.atleast_2d(protect)[0] if np.asarray(protect).ndim == 1 else protect[i]
        bad = np.flatnonzero(must_keep & ~retained[i])
        for j in bad[:max_report]:
            violations.append(
                f"row {i}: key {j} pruned but score {exact[i, j]} within guard "
                f"{guard} of max {exact[i].max()}"
            )
    return ValidationReport(ok=not violations, violations=violations)


def validate_partial_scores(
    q_row: np.ndarray,
    key_planes: BitPlanes,
    partial_scores: np.ndarray,
    planes_known: np.ndarray,
    max_report: int = 10,
) -> ValidationReport:
    """Check that cached partial scores match the plane-prefix ground truth.

    This is the scoreboard-integrity audit: entry ``j`` must equal
    ``q · partial_reconstruct(K_j, planes_known_j)``; a bit flip in the
    scoreboard (or a mis-sequenced plane update) is caught here.
    """
    q = np.asarray(q_row, dtype=np.int64)
    partial_scores = np.asarray(partial_scores, dtype=np.int64)
    planes_known = np.asarray(planes_known, dtype=np.int64)
    violations: List[str] = []
    for r in np.unique(planes_known):
        idx = np.flatnonzero(planes_known == r)
        if idx.size == 0 or r == 0:
            continue
        truth = partial_reconstruct(key_planes, int(r))[idx] @ q
        bad = idx[truth != partial_scores[idx]]
        for j in bad[:max_report]:
            violations.append(
                f"key {j}: cached partial {partial_scores[j]} != ground truth "
                f"at {r} planes"
            )
    return ValidationReport(ok=not violations, violations=violations)
