"""Configuration for the PADE algorithm and its hardware instantiation."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["PadeConfig"]


@dataclass(frozen=True)
class PadeConfig:
    """Algorithm + dataflow parameters of PADE.

    Defaults follow the paper: 8-bit operands, guard radius 5 (in softmax
    logit units), α in [0.5, 0.6] for the balanced operating point (§VI-D),
    tile size Bc=16 (Fig. 10b), head-tail interleaving on.

    Attributes
    ----------
    bits:
        Operand bit width; each Key is processed as ``bits`` one-bit planes.
    alpha:
        Pruning aggressiveness in ``T = max(S_min) - alpha * radius``
        (paper Eq. 4).  ``alpha=1`` is the most conservative setting the
        guard supports; smaller values prune harder.
    radius:
        Guard radius in *logit* units (paper default 5).
    tile_size:
        ISTA tile size Bc — number of retained keys per V-PU tile.
    head_tail_interleave:
        Visit tiles head/tail interleaved (Fig. 10a) instead of left-to-right.
    scale_logits:
        Divide logits by sqrt(head_dim) before softmax (standard attention).
    causal:
        Restrict each query to keys at or before its own position.
    sink_tokens / recent_tokens:
        Keys always retained regardless of the filter (attention-sink
        protection; 0 disables).  The paper's head-tail update strategy
        leans on the same locality prior.
    backend:
        Name of the kernel backend running the fused filter
        (``"reference"`` / ``"fast"`` or any registered third-party
        backend).  ``None`` defers to the registry's precedence chain
        (session default, then ``$REPRO_BACKEND``, then ``"fast"``) — see
        :mod:`repro.core.backend`.  Backends are result-identical; this
        only selects the loop structure.
    """

    bits: int = 8
    alpha: float = 0.6
    radius: float = 5.0
    tile_size: int = 16
    head_tail_interleave: bool = True
    scale_logits: bool = True
    causal: bool = False
    sink_tokens: int = 0
    recent_tokens: int = 0
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.radius < 0:
            raise ValueError(f"radius must be non-negative, got {self.radius}")
        if self.bits < 2:
            raise ValueError(f"bits must be >= 2, got {self.bits}")
        if self.tile_size < 1:
            raise ValueError(f"tile_size must be >= 1, got {self.tile_size}")
        if self.sink_tokens < 0 or self.recent_tokens < 0:
            raise ValueError("sink_tokens / recent_tokens must be non-negative")

    def with_alpha(self, alpha: float) -> "PadeConfig":
        """Return a copy with a different pruning aggressiveness."""
        return replace(self, alpha=alpha)

    @classmethod
    def standard(cls) -> "PadeConfig":
        """The paper's 'standard' (~0% accuracy loss) operating point."""
        return cls(alpha=0.6)

    @classmethod
    def aggressive(cls) -> "PadeConfig":
        """The paper's 'aggressive' (~1% accuracy loss) operating point."""
        return cls(alpha=0.5)

    @classmethod
    def dense(cls) -> "PadeConfig":
        """A configuration that never prunes (radius 0, alpha 0 ⇒ T = max LB;
        combined with an infinite guard this degenerates to dense attention).

        Implemented as alpha=0 with radius=inf semantics via a huge radius.
        """
        return cls(alpha=1.0, radius=float("inf"))
