"""Cross-request fused filter round: every active request × head at once.

:func:`repro.core.bsf_fast.bsf_filter_fast_heads` fuses one request's
filter round across its heads; a busy continuous-batching round still
dispatches it once *per request*, so at an active-set size of 16+ the
engine pays 16 small einsums (and their Python round loops) where one big
one would do.  :func:`bsf_filter_fast_batch` closes that gap: the ragged
per-request key sequences are padded to a shared ``S_max`` with a
**validity mask** and the per-(request, head, row) threshold recursion
runs over one ``(R, Hh, P, S_max)`` lattice — one einsum per bit round
covers the whole active set.

Equivalence rule (DESIGN.md §13): the threshold recursion is row-private
— ``max_lb`` folds only over that (request, head, row)'s alive keys — and
padding columns start dead (``alive = False``) and can never be revived
(``protect`` is forced ``False`` on padding), so they contribute neither
bounds nor counters.  Every per-request slice of the fused lattice is
therefore *bit for bit* the :func:`bsf_filter_fast_heads` result for that
request alone, including the ``bit_plane_loads`` / ``effective_bit_ops``
/ ``naive_bit_ops`` counters, which are accumulated with the request axis
kept separate.

The column-compaction trick carries over **per request**, not batch-wide:
requests retain different token positions, so the union of alive columns
across a busy active set stays dense even when every request's own set is
sparse — compacting on the union would throw the trick away exactly when
it matters.  Instead, every request's own alive columns (any head/row)
fill a dense prefix of a shared-width compacted lattice; rows whose
request has fewer alive columns than the batch maximum point their tail
at a **dead sentinel column** appended past ``S_max``, which is never
alive, never protected, and never read back — so tail cells mask
themselves out of every update and the einsum width per round is
``max_i |alive_i|``, the same per-request compaction
:func:`bsf_filter_fast_heads` enjoys.

All mutable state is *compact-resident*: because a request's alive
column set only ever shrinks, the recursion never needs to scatter state
back to the padded lattice each round.  When a column goes dead in every
(head, row) it is dropped from the compacted lattice, writing its final
``planes_processed`` (its death round) to the output lattice exactly
once; survivors scatter their retained/score/processed state once after
the last round.  Compaction only skips provably dead work, so it never
affects results — and the ragged requests' padding columns are dead from
round 0, so they fall out of the very first shrink.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.bsf import BSFResult
from repro.core.bui import build_bui_lut
from repro.quant.bitplane import BitPlanes, plane_weights

__all__ = ["bsf_filter_fast_batch"]


def bsf_filter_fast_batch(
    q_ints: Sequence[np.ndarray],
    key_planes: Sequence[BitPlanes],
    guards: Sequence[np.ndarray],
    alloweds: Optional[Sequence[Optional[np.ndarray]]] = None,
    protects: Optional[Sequence[Optional[np.ndarray]]] = None,
) -> List[BSFResult]:
    """Fused filter round over a ragged batch of requests.

    Parameters
    ----------
    q_ints:
        One integer query block per request, each of shape ``(Hh, P, D)``
        — all requests must share ``(Hh, P, D)`` (one model, one decode
        step per round).
    key_planes:
        One :class:`BitPlanes` per request with value shape
        ``(Hh, S_i, D)``; the ``S_i`` may differ (ragged active set).
    guards:
        One per-head guard vector per request (anything broadcastable to
        ``(Hh,)`` — heads quantize independently per request).
    alloweds / protects:
        Optional per-request masks, each ``None`` or broadcastable to
        ``(Hh, P, S_i)``, exactly as :func:`bsf_filter_fast_heads` takes
        them.

    Returns one :class:`BSFResult` per request, bit for bit equal to
    calling :func:`bsf_filter_fast_heads` per request.
    """
    num_requests = len(key_planes)
    if num_requests == 0:
        return []
    if len(q_ints) != num_requests or len(guards) != num_requests:
        raise ValueError("q_ints, key_planes and guards must have equal lengths")
    if alloweds is None:
        alloweds = [None] * num_requests
    if protects is None:
        protects = [None] * num_requests

    qs = [np.asarray(qi, dtype=np.int64) for qi in q_ints]
    if any(qi.ndim != 3 for qi in qs):
        raise ValueError("each request's queries must have shape (heads, rows, dim)")
    if len({qi.shape for qi in qs}) != 1:
        raise ValueError(f"requests must share (heads, rows, dim); got {[qi.shape for qi in qs]}")
    num_heads, num_rows, head_dim = qs[0].shape
    bits = key_planes[0].bits
    seq_lens = []
    for i, kp in enumerate(key_planes):
        vshape = kp.value_shape
        if kp.bits != bits:
            raise ValueError("all requests must share the plane bit width")
        if len(vshape) != 3 or vshape[0] != num_heads or vshape[2] != head_dim:
            raise ValueError(
                f"request {i} key planes value shape {vshape} does not match "
                f"({num_heads}, S, {head_dim}) queries"
            )
        seq_lens.append(vshape[1])
    s_max = max(seq_lens)

    q = np.stack(qs)  # (R, Hh, P, D)
    guard_mat = np.stack(
        [np.broadcast_to(np.asarray(g, dtype=np.float64), (num_heads,)) for g in guards]
    )  # (R, Hh)

    # Pad the ragged planes into one lattice, laid out (bits, R, S, Hh, D)
    # so the per-round column gather is leading-axis fancy indexing (the
    # fast path — contiguous (Hh, D) blocks per picked column).  Only each
    # request's own columns and the shared all-zero sentinel column (index
    # s_max, where compaction tails point) are ever gathered, so the
    # ragged padding gap can stay uninitialised — no multi-megabyte memset
    # per decode round.
    s_pad = s_max + 1
    planes = np.empty((bits, num_requests, s_pad, num_heads, head_dim), dtype=np.uint8)
    planes[:, :, s_max] = 0
    for i, kp in enumerate(key_planes):
        planes[:, i, : seq_lens[i]] = np.asarray(kp.planes).transpose(0, 2, 1, 3)

    # Compact-resident state, laid out (R, W, Hh, P) so per-request column
    # gathers are plain leading-axis fancy indexing.  ``orig_cols`` maps
    # compact slots back to original key positions; tail slots carry the
    # sentinel id ``s_max`` and are permanently dead.
    width = s_max
    orig_cols = np.full((num_requests, width), s_max, dtype=np.int64)
    alive_c = np.zeros((num_requests, width, num_heads, num_rows), dtype=bool)
    prot_c = np.zeros((num_requests, width, num_heads, num_rows), dtype=bool)
    for i, s in enumerate(seq_lens):
        orig_cols[i, :s] = np.arange(s)
        sub = (num_heads, num_rows, s)
        if alloweds[i] is None:
            alive_c[i, :s] = True
        else:
            alive_c[i, :s] = np.broadcast_to(
                np.asarray(alloweds[i], dtype=bool), sub
            ).transpose(2, 0, 1)
        if protects[i] is not None:
            prot_c[i, :s] = np.broadcast_to(
                np.asarray(protects[i], dtype=bool), sub
            ).transpose(2, 0, 1)
    partial_c = np.zeros((num_requests, width, num_heads, num_rows), dtype=np.int64)
    pp_c = np.zeros((num_requests, width, num_heads, num_rows), dtype=np.int64)

    lut = build_bui_lut(q.reshape(num_requests * num_heads * num_rows, head_dim), bits=bits)
    i_min = lut.i_min.reshape(num_requests, num_heads, num_rows, bits + 1)
    i_max = lut.i_max.reshape(num_requests, num_heads, num_rows, bits + 1)
    weights = plane_weights(bits)

    max_lb = np.full((num_requests, num_heads, num_rows), -np.inf)
    finite_guard = np.isfinite(guard_mat)
    # Masked-max sentinel: far below any reachable partial sum but finite,
    # so the int-only fold below never needs a float lattice.  A (head,
    # row) with no alive keys gets a hugely negative (not -inf) max_lb;
    # its threshold then keeps everything, exactly like -inf would, and
    # the row is permanently dead anyway.
    int_floor = np.int64(-(2**62))

    # Output lattices in original column space; dropped columns scatter
    # their death-round ``planes_processed`` here exactly once, survivors
    # scatter everything once after the final round.
    retained_out = np.zeros((num_requests, num_heads, num_rows, s_max), dtype=bool)
    pp_out = np.zeros((num_requests, num_heads, num_rows, s_max), dtype=np.int64)
    scores_out = np.zeros((num_requests, num_heads, num_rows, s_max), dtype=np.int64)

    req_ix = np.arange(num_requests)[:, None]
    for r in range(bits):
        # Per-request compaction: shrink the shared width to the busiest
        # request's alive column count.  A column dropped here died in an
        # earlier round, so its frozen ``pp_c`` is its death round — write
        # it out now, it leaves the compact lattice for good.  Compaction
        # only skips provably dead (masked) work, so *when* it runs is
        # pure tuning: small shrinks are skipped because five gathers
        # cost more than the einsum columns they would save.
        col_alive = alive_c.any(axis=(2, 3))  # (R, width)
        n_cols = col_alive.sum(axis=1)
        new_w = int(n_cols.max())
        if new_w == 0:
            break
        if new_w < width - (width >> 3):
            if r > 0:  # at r == 0 dropped columns were never alive: pp is 0
                dropped = ~col_alive & (orig_cols < s_max)
                if dropped.any():
                    ri, ci = np.nonzero(dropped)
                    pp_out[ri, :, :, orig_cols[ri, ci]] = pp_c[ri, ci]
            sel = np.zeros((num_requests, new_w), dtype=np.int64)
            for i in range(num_requests):
                cols_i = np.flatnonzero(col_alive[i])
                sel[i, : cols_i.size] = cols_i
            tail = np.arange(new_w)[None, :] >= n_cols[:, None]
            orig_cols = np.where(tail, s_max, orig_cols[req_ix, sel])
            alive_c = alive_c[req_ix, sel]
            alive_c[tail] = False  # tail slots duplicate slot data; kill them
            prot_c = prot_c[req_ix, sel]
            partial_c = partial_c[req_ix, sel]
            pp_c = pp_c[req_ix, sel]
            width = new_w

        # Leading-axis fancy gather (not take_along_axis — broadcasting
        # ids over the D axis makes numpy walk cell by cell).  Result is
        # (R, width, Hh, D); the sentinel column is all zeros and its
        # cells are dead anyway.
        plane = planes[r][req_ix, orig_cols]
        delta = np.einsum("rhpd,rshd->rshp", q, plane, dtype=np.int64)
        partial_c = np.where(alive_c, partial_c + weights[r] * delta, partial_c)
        pp_c += alive_c  # processed rounds are consecutive from round 0

        # Row-private threshold fold, all-integer until the last step: the
        # per-round BUI addend i_min[r+1] is constant per (request, head,
        # row), so folding max over the alive partials first and adding it
        # after is exact (int64 throughout, no float rounding).
        part_max = np.where(alive_c, partial_c, int_floor).max(axis=1)
        max_lb = np.maximum(max_lb, part_max + i_min[:, :, :, r + 1])
        threshold = np.where(finite_guard[:, :, None], max_lb - guard_mat[:, :, None], -np.inf)
        ub = partial_c + i_max[:, :, :, r + 1][:, None]
        alive_c &= (ub >= threshold[:, None]) | prot_c

    # Columns still resident (alive or died in the final rounds without a
    # shrink) scatter their state back to original positions in one shot.
    resident = orig_cols < s_max
    if resident.any():
        ri, ci = np.nonzero(resident)
        oc = orig_cols[ri, ci]
        retained_out[ri, :, :, oc] = alive_c[ri, ci]
        pp_out[ri, :, :, oc] = pp_c[ri, ci]
        scores_out[ri, :, :, oc] = np.where(alive_c[ri, ci], partial_c[ri, ci], 0)

    # Deferred counters: a cell processed for ``pp`` rounds consumed
    # planes 0..pp-1, so per-cell op counts are prefix sums of the
    # per-column popcounts indexed by the cell's final ``pp`` — no
    # per-round reductions needed.  ``cum[0] == 0`` guards the
    # uninitialised padding columns (their ``pp`` is 0).
    pc_all = planes.sum(axis=4, dtype=np.int64)  # (bits, R, s_pad, Hh)
    naive_cum = np.zeros((bits + 1,) + pc_all.shape[1:], dtype=np.int64)
    np.cumsum(pc_all, axis=0, out=naive_cum[1:])
    eff_cum = np.zeros_like(naive_cum)
    np.cumsum(np.minimum(pc_all, head_dim - pc_all), axis=0, out=eff_cum[1:])
    ri = np.arange(num_requests)[:, None, None, None]
    hi = np.arange(num_heads)[None, :, None, None]
    ci = np.arange(s_max)[None, None, None, :]
    loads = pp_out.sum(axis=(1, 2, 3))  # bit_plane_loads == sum of rounds processed
    eff_ops = eff_cum[pp_out, ri, ci, hi].sum(axis=(1, 2, 3))
    naive_ops = naive_cum[pp_out, ri, ci, hi].sum(axis=(1, 2, 3))

    results = []
    for i, s in enumerate(seq_lens):
        results.append(
            BSFResult(
                retained=retained_out[i, :, :, :s],
                planes_processed=pp_out[i, :, :, :s],
                scores=scores_out[i, :, :, :s],
                bit_plane_loads=int(loads[i]),
                effective_bit_ops=int(eff_ops[i]),
                naive_bit_ops=int(naive_ops[i]),
            )
        )
    return results
