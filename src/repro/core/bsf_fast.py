"""Vectorized fast path for the fused filter (batch of query rows at once).

:func:`repro.core.bsf.bsf_filter` loops query rows in Python; this variant
runs the whole query block per bit round with one matmul, trading the exact
per-row "observe then decide within a round" interleaving for a synchronous
round barrier across the block.  The two produce identical results because
the threshold is row-private either way — only the loop structure differs.
Used by the harness and benches where the functional pass dominates runtime
(~5-8× faster on 8×2048 problems).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.bsf import BSFResult
from repro.core.bui import build_bui_lut
from repro.quant.bitplane import BitPlanes, plane_weights

__all__ = ["bsf_filter_fast"]


def bsf_filter_fast(
    q_int: np.ndarray,
    key_planes: BitPlanes,
    guard: float,
    allowed: Optional[np.ndarray] = None,
    protect: Optional[np.ndarray] = None,
) -> BSFResult:
    """Drop-in vectorized equivalent of :func:`repro.core.bsf.bsf_filter`."""
    q = np.atleast_2d(np.asarray(q_int, dtype=np.int64))
    num_rows = q.shape[0]
    bits = key_planes.bits
    num_keys, head_dim = key_planes.value_shape
    lut = build_bui_lut(q, bits=bits)
    weights = plane_weights(bits)

    if allowed is None:
        alive = np.ones((num_rows, num_keys), dtype=bool)
    else:
        arr = np.asarray(allowed, dtype=bool)
        alive = np.broadcast_to(arr, (num_rows, num_keys)).copy()
    if protect is None:
        protected = np.zeros((num_rows, num_keys), dtype=bool)
    else:
        arr = np.asarray(protect, dtype=bool)
        protected = np.broadcast_to(arr, (num_rows, num_keys))

    partial = np.zeros((num_rows, num_keys), dtype=np.int64)
    planes_processed = np.zeros((num_rows, num_keys), dtype=np.int64)
    max_lb = np.full(num_rows, -np.inf)

    loads = 0
    eff_ops = 0
    naive_ops = 0
    guard_vec = guard if np.isfinite(guard) else np.inf

    for r in range(bits):
        if not alive.any():
            break
        plane = key_planes.planes[r].astype(np.int64)  # (S, H)
        delta = q @ plane.T  # (P, S): every row's plane contribution
        partial = np.where(alive, partial + weights[r] * delta, partial)
        planes_processed = np.where(alive, r + 1, planes_processed)
        active_counts = alive.sum(axis=0)  # rows consuming each token
        loads += int(alive.sum())
        pc = plane.sum(axis=1)
        eff = np.minimum(pc, head_dim - pc)
        eff_ops += int((eff[None, :] * alive).sum())
        naive_ops += int((pc[None, :] * alive).sum())
        del active_counts

        lb = partial + lut.i_min[:, r + 1][:, None]
        ub = partial + lut.i_max[:, r + 1][:, None]
        # Row-private running max over all alive tokens' lower bounds.
        lb_masked = np.where(alive, lb, -np.inf)
        max_lb = np.maximum(max_lb, lb_masked.max(axis=1, initial=-np.inf))
        threshold = max_lb - guard_vec if np.isfinite(guard_vec) else np.full(num_rows, -np.inf)
        keep = (ub >= threshold[:, None]) | protected
        alive &= keep

    retained = alive
    scores = np.where(retained, partial, 0)
    return BSFResult(
        retained=retained,
        planes_processed=planes_processed,
        scores=scores,
        bit_plane_loads=loads,
        effective_bit_ops=eff_ops,
        naive_bit_ops=naive_ops,
    )
