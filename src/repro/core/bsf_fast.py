"""Vectorized fast path for the fused filter (batch of query rows at once).

:func:`repro.core.bsf.bsf_filter` loops query rows in Python; this variant
runs the whole query block per bit round with one matmul, trading the exact
per-row "observe then decide within a round" interleaving for a synchronous
round barrier across the block.  The two produce identical results because
the threshold is row-private either way — only the loop structure differs.
Used by the harness and benches where the functional pass dominates runtime
(~5-8× faster on 8×2048 problems).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.bsf import BSFResult
from repro.core.bui import build_bui_lut
from repro.quant.bitplane import BitPlanes, plane_weights

__all__ = ["bsf_filter_fast", "bsf_filter_fast_heads"]


def bsf_filter_fast(
    q_int: np.ndarray,
    key_planes: BitPlanes,
    guard: float,
    allowed: Optional[np.ndarray] = None,
    protect: Optional[np.ndarray] = None,
) -> BSFResult:
    """Drop-in vectorized equivalent of :func:`repro.core.bsf.bsf_filter`."""
    q = np.atleast_2d(np.asarray(q_int, dtype=np.int64))
    num_rows = q.shape[0]
    bits = key_planes.bits
    num_keys, head_dim = key_planes.value_shape
    lut = build_bui_lut(q, bits=bits)
    weights = plane_weights(bits)

    if allowed is None:
        alive = np.ones((num_rows, num_keys), dtype=bool)
    else:
        arr = np.asarray(allowed, dtype=bool)
        alive = np.broadcast_to(arr, (num_rows, num_keys)).copy()
    if protect is None:
        protected = np.zeros((num_rows, num_keys), dtype=bool)
    else:
        arr = np.asarray(protect, dtype=bool)
        protected = np.broadcast_to(arr, (num_rows, num_keys))

    partial = np.zeros((num_rows, num_keys), dtype=np.int64)
    planes_processed = np.zeros((num_rows, num_keys), dtype=np.int64)
    max_lb = np.full(num_rows, -np.inf)

    loads = 0
    eff_ops = 0
    naive_ops = 0
    guard_vec = guard if np.isfinite(guard) else np.inf

    for r in range(bits):
        if not alive.any():
            break
        plane = key_planes.planes[r].astype(np.int64)  # (S, H)
        delta = q @ plane.T  # (P, S): every row's plane contribution
        partial = np.where(alive, partial + weights[r] * delta, partial)
        planes_processed = np.where(alive, r + 1, planes_processed)
        loads += int(alive.sum())
        pc = plane.sum(axis=1)
        eff = np.minimum(pc, head_dim - pc)
        eff_ops += int((eff[None, :] * alive).sum())
        naive_ops += int((pc[None, :] * alive).sum())

        lb = partial + lut.i_min[:, r + 1][:, None]
        ub = partial + lut.i_max[:, r + 1][:, None]
        # Row-private running max over all alive tokens' lower bounds.
        lb_masked = np.where(alive, lb, -np.inf)
        max_lb = np.maximum(max_lb, lb_masked.max(axis=1, initial=-np.inf))
        threshold = max_lb - guard_vec if np.isfinite(guard_vec) else np.full(num_rows, -np.inf)
        keep = (ub >= threshold[:, None]) | protected
        alive &= keep

    retained = alive
    scores = np.where(retained, partial, 0)
    return BSFResult(
        retained=retained,
        planes_processed=planes_processed,
        scores=scores,
        bit_plane_loads=loads,
        effective_bit_ops=eff_ops,
        naive_bit_ops=naive_ops,
    )


def bsf_filter_fast_heads(
    q_int: np.ndarray,
    key_planes: BitPlanes,
    guards: np.ndarray,
    allowed: Optional[np.ndarray] = None,
    protect: Optional[np.ndarray] = None,
) -> BSFResult:
    """Head-batched fused filter: one einsum covers every head per round.

    The multi-head extension of :func:`bsf_filter_fast` the serving engine
    dispatches on.  ``q_int`` has shape ``(Hh, P, H)``, ``key_planes``
    value shape ``(Hh, S, H)`` (one Key matrix per head), and ``guards``
    one integer-unit guard per head (heads quantize independently, so the
    logit→integer conversion differs per head).  ``allowed`` / ``protect``
    may be ``(Hh, P, S)`` or any shape broadcastable to it (e.g. a shared
    causal ``(P, S)`` mask).

    The per-(head, row) threshold recursion is exactly the single-head fast
    path's, so the result fields match a per-head loop over
    :func:`bsf_filter_fast` bit for bit; the returned :class:`BSFResult`
    carries ``(Hh, P, S)`` arrays.
    """
    q = np.asarray(q_int, dtype=np.int64)
    if q.ndim != 3:
        raise ValueError(f"expected (heads, rows, dim) queries, got shape {q.shape}")
    num_heads, num_rows, head_dim = q.shape
    vshape = key_planes.value_shape
    if len(vshape) != 3 or vshape[0] != num_heads or vshape[2] != head_dim:
        raise ValueError(
            f"key planes value shape {vshape} does not match "
            f"({num_heads}, S, {head_dim}) queries"
        )
    bits = key_planes.bits
    num_keys = key_planes.value_shape[1]
    guards = np.broadcast_to(np.asarray(guards, dtype=np.float64), (num_heads,))

    lut = build_bui_lut(q.reshape(num_heads * num_rows, head_dim), bits=bits)
    i_min = lut.i_min.reshape(num_heads, num_rows, bits + 1)
    i_max = lut.i_max.reshape(num_heads, num_rows, bits + 1)
    weights = plane_weights(bits)

    shape = (num_heads, num_rows, num_keys)
    if allowed is None:
        alive = np.ones(shape, dtype=bool)
    else:
        alive = np.broadcast_to(np.asarray(allowed, dtype=bool), shape).copy()
    if protect is None:
        protected = np.zeros(shape, dtype=bool)
    else:
        protected = np.broadcast_to(np.asarray(protect, dtype=bool), shape)

    partial = np.zeros(shape, dtype=np.int64)
    planes_processed = np.zeros(shape, dtype=np.int64)
    max_lb = np.full((num_heads, num_rows), -np.inf)
    finite_guard = np.isfinite(guards)

    loads = 0
    eff_ops = 0
    naive_ops = 0

    # Column compaction: once a key is pruned for every (head, row) it can
    # never contribute again, so later rounds gather only the surviving
    # candidate columns — the vectorized analogue of the reference row
    # kernel's shrinking alive-index set.  Results are unaffected; only the
    # dead-column work is skipped.
    cols = np.arange(num_keys)
    for r in range(bits):
        active_cols = np.flatnonzero(alive[:, :, cols].any(axis=(0, 1)))
        if active_cols.size == 0:
            break
        if active_cols.size < cols.size:
            cols = cols[active_cols]
        alive_c = alive[:, :, cols]
        plane = key_planes.planes[r][:, cols, :]  # (Hh, S', H) uint8
        delta = np.einsum("hpd,hsd->hps", q, plane, dtype=np.int64)
        sub = partial[:, :, cols]
        sub = np.where(alive_c, sub + weights[r] * delta, sub)
        partial[:, :, cols] = sub
        planes_processed[:, :, cols] = np.where(alive_c, r + 1, planes_processed[:, :, cols])
        loads += int(alive_c.sum())
        pc = plane.sum(axis=2, dtype=np.int64)  # (Hh, S')
        eff = np.minimum(pc, head_dim - pc)
        eff_ops += int((eff[:, None, :] * alive_c).sum())
        naive_ops += int((pc[:, None, :] * alive_c).sum())

        lb = sub + i_min[:, :, r + 1][:, :, None]
        ub = sub + i_max[:, :, r + 1][:, :, None]
        lb_masked = np.where(alive_c, lb, -np.inf)
        max_lb = np.maximum(max_lb, lb_masked.max(axis=2, initial=-np.inf))
        threshold = np.where(finite_guard[:, None], max_lb - guards[:, None], -np.inf)
        keep = (ub >= threshold[:, :, None]) | protected[:, :, cols]
        alive[:, :, cols] = alive_c & keep

    retained = alive
    scores = np.where(retained, partial, 0)
    return BSFResult(
        retained=retained,
        planes_processed=planes_processed,
        scores=scores,
        bit_plane_loads=loads,
        effective_bit_ops=eff_ops,
        naive_bit_ops=naive_ops,
    )
