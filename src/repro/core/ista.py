"""Interleaving-based sparsity-tiled attention (ISTA, paper §IV-C, Fig. 10).

ISTA reconciles BUI-GF's row-wise pruning criterion with IO-efficient tiling.
Two observations make it safe:

1. The softmax denominator grows monotonically as keys are added (Eq. 7), so
   a token pruned against a *subset* threshold would also be pruned against
   the full-row threshold — the guarded filter may run inside tiles.
2. A key is *retained* only once it has survived all the way to its LSB
   plane; retained keys (with their now-exact scores) are packed into tiles
   of size ``Bc`` and consumed FlashAttention-style with an online softmax.

The *head-tail interleaved* visitation order exploits attention locality
(initial + recent tokens dominate): visiting the dominant regions first means
the running maximum stabilizes early, avoiding the rescale work each max
update triggers (one subtract, one exponentiation, two scalar-vector
multiplies — lines 11-12 of Fig. 10c).  Without locality the order is no
worse than left-to-right.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.core.bui import build_bui_lut
from repro.core.bui_gf import GuardedFilter
from repro.quant.bitplane import BitPlanes

__all__ = ["ISTAResult", "ISTAStats", "head_tail_order", "ista_attention_row", "ista_attention"]


def head_tail_order(num_blocks: int) -> List[int]:
    """Head-tail interleaved block visitation order (Fig. 10a).

    The schedule begins with the initial region, jumps to the recent region,
    returns to the post-initial region, and repeats:
    ``[0, n-1, 1, n-2, 2, ...]``.

    >>> head_tail_order(5)
    [0, 4, 1, 3, 2]
    """
    order: List[int] = []
    lo, hi = 0, num_blocks - 1
    while lo <= hi:
        order.append(lo)
        if hi != lo:
            order.append(hi)
        lo += 1
        hi -= 1
    return order


@dataclass
class ISTAStats:
    """Operation counters for the tiled pass (drives Fig. 10b / Fig. 16a)."""

    tiles_flushed: int = 0
    max_updates: int = 0
    rescale_vector_ops: int = 0  # element ops spent rescaling O and l
    exp_ops: int = 0
    pv_macs: int = 0
    v_rows_loaded: int = 0
    bit_plane_loads: int = 0
    effective_bit_ops: int = 0
    naive_bit_ops: int = 0
    retained_keys: int = 0
    candidate_keys: int = 0

    @property
    def sparsity(self) -> float:
        if self.candidate_keys == 0:
            return 0.0
        return 1.0 - self.retained_keys / self.candidate_keys

    def merge(self, other: "ISTAStats") -> None:
        for name in vars(self):
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass(frozen=True)
class ISTAResult:
    """Attention output + retained set + counters for one or more rows."""

    output: np.ndarray
    retained: np.ndarray
    stats: ISTAStats


def _iter_key_blocks(
    allowed_idx: np.ndarray, block: int, interleave: bool
) -> Iterator[np.ndarray]:
    """Yield index blocks of the candidate keys in visitation order."""
    num_blocks = int(np.ceil(allowed_idx.size / block))
    if num_blocks == 0:
        return
    order = head_tail_order(num_blocks) if interleave else list(range(num_blocks))
    for b in order:
        yield allowed_idx[b * block : (b + 1) * block]


class _OnlineSoftmax:
    """FlashAttention-style streaming softmax accumulator for one row."""

    def __init__(self, head_dim: int) -> None:
        self.m = -np.inf
        self.l = 0.0
        self.o = np.zeros(head_dim, dtype=np.float64)

    def update(self, logits: np.ndarray, values: np.ndarray, stats: ISTAStats) -> None:
        """Fold one tile of (logit, V-row) pairs into the running output."""
        if logits.size == 0:
            return
        tile_max = float(logits.max())
        m_new = max(self.m, tile_max)
        if m_new > self.m and np.isfinite(self.m):
            # A max update costs the rescale chain of Fig. 10c lines 11-12.
            stats.max_updates += 1
            correction = np.exp(self.m - m_new)
            self.o *= correction
            self.l *= correction
            stats.exp_ops += 1
            stats.rescale_vector_ops += self.o.size + 1
        elif not np.isfinite(self.m):
            stats.max_updates += 1  # first tile initializes the max
        self.m = m_new
        p = np.exp(logits - self.m)
        stats.exp_ops += logits.size
        self.l += float(p.sum())
        self.o += p @ values
        stats.pv_macs += logits.size * self.o.size

    def finalize(self) -> np.ndarray:
        if self.l == 0.0:
            return np.zeros_like(self.o)
        return self.o / self.l


def ista_attention_row(
    q_row_int: np.ndarray,
    key_planes: BitPlanes,
    values: np.ndarray,
    guard: float,
    logit_scale: float,
    tile_size: int = 16,
    observation_block: Optional[int] = None,
    interleave: bool = True,
    allowed: Optional[np.ndarray] = None,
    protect: Optional[np.ndarray] = None,
    backend=None,
) -> ISTAResult:
    """Run ISTA for one query row.

    Parameters
    ----------
    q_row_int:
        Integer query row, shape ``(H,)``.
    key_planes:
        Bit planes of the integer Key matrix (value shape ``(S, H)``).
    values:
        Float V matrix, shape ``(S, Hv)``.
    guard:
        ``alpha * radius`` in integer-score units.
    logit_scale:
        Factor mapping integer scores to softmax logits.
    tile_size:
        Bc — retained keys per V-PU tile (Fig. 10c line 3).
    observation_block:
        Granularity at which key candidates are streamed through the
        bit-serial filter (defaults to ``tile_size``).
    interleave:
        Use the head-tail interleaved order; ``False`` = left-to-right.
    allowed / protect:
        Candidate mask / always-keep mask over keys.
    backend:
        Kernel backend name or instance running the fused filter; ``None``
        resolves via the registry (:mod:`repro.core.backend`).
    """
    from repro.core.backend import get_backend

    kernel = get_backend(backend)
    q = np.asarray(q_row_int, dtype=np.int64)
    num_keys = key_planes.value_shape[0]
    values = np.asarray(values, dtype=np.float64)
    if values.shape[0] != num_keys:
        raise ValueError("values row count must match key count")
    block = observation_block or tile_size
    allowed_mask = (
        np.ones(num_keys, dtype=bool) if allowed is None else np.asarray(allowed, bool)
    )
    protected = (
        np.zeros(num_keys, dtype=bool) if protect is None else np.asarray(protect, bool)
    )
    allowed_idx = np.flatnonzero(allowed_mask)

    lut = build_bui_lut(q[None, :], bits=key_planes.bits)
    gfilter = GuardedFilter(guard=guard)
    stats = ISTAStats(candidate_keys=int(allowed_idx.size))
    acc = _OnlineSoftmax(values.shape[1])
    retained_mask = np.zeros(num_keys, dtype=bool)

    pending_idx: List[int] = []
    pending_scores: List[int] = []

    def flush(final: bool = False) -> None:
        while len(pending_idx) >= tile_size or (final and pending_idx):
            take = min(tile_size, len(pending_idx))
            idx = np.asarray(pending_idx[:take], dtype=np.int64)
            sc = np.asarray(pending_scores[:take], dtype=np.int64)
            del pending_idx[:take], pending_scores[:take]
            logits = sc.astype(np.float64) * logit_scale
            acc.update(logits, values[idx], stats)
            stats.tiles_flushed += 1
            stats.v_rows_loaded += int(idx.size)

    for block_idx in _iter_key_blocks(allowed_idx, block, interleave):
        mask = np.zeros(num_keys, dtype=bool)
        mask[block_idx] = True
        res = kernel.filter_row(
            q, key_planes, guard, lut=lut, allowed=mask, protect=protected, gfilter=gfilter
        )
        stats.bit_plane_loads += res.bit_plane_loads
        stats.effective_bit_ops += res.effective_bit_ops
        stats.naive_bit_ops += res.naive_bit_ops
        kept = np.flatnonzero(res.retained)
        retained_mask[kept] = True
        pending_idx.extend(int(k) for k in kept)
        pending_scores.extend(int(s) for s in res.scores[kept])
        flush()
    flush(final=True)

    stats.retained_keys = int(retained_mask.sum())
    return ISTAResult(output=acc.finalize(), retained=retained_mask, stats=stats)


def ista_attention(
    q_int: np.ndarray,
    key_planes: BitPlanes,
    values: np.ndarray,
    guard: float,
    logit_scale: float,
    tile_size: int = 16,
    interleave: bool = True,
    allowed: Optional[np.ndarray] = None,
    protect: Optional[np.ndarray] = None,
    backend=None,
) -> ISTAResult:
    """Batched ISTA over ``P`` query rows (outer loop of Fig. 10c).

    ``allowed`` / ``protect`` may be shared ``(S,)`` or per-row ``(P, S)``.
    """
    q = np.atleast_2d(np.asarray(q_int, dtype=np.int64))
    num_queries = q.shape[0]
    num_keys = key_planes.value_shape[0]
    outputs = np.zeros((num_queries, values.shape[1]), dtype=np.float64)
    retained = np.zeros((num_queries, num_keys), dtype=bool)
    stats = ISTAStats()

    def row_mask(mask: Optional[np.ndarray], i: int) -> Optional[np.ndarray]:
        if mask is None:
            return None
        arr = np.asarray(mask, dtype=bool)
        return arr[i] if arr.ndim == 2 else arr

    for i in range(num_queries):
        res = ista_attention_row(
            q[i],
            key_planes,
            values,
            guard,
            logit_scale,
            tile_size=tile_size,
            interleave=interleave,
            allowed=row_mask(allowed, i),
            protect=row_mask(protect, i),
            backend=backend,
        )
        outputs[i] = res.output
        retained[i] = res.retained
        stats.merge(res.stats)
    return ISTAResult(output=outputs, retained=retained, stats=stats)
