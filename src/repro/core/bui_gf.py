"""BUI-enabled guarded filtering (BUI-GF, paper §IV-A, Fig. 7).

The filter exploits softmax's exponential decay (Eq. 1): a token whose score
sits far below the row maximum contributes negligibly.  Working with interval
bounds instead of exact scores makes the decision *safe*:

* **Step 0 — threshold updating**: the threshold tracks the best *lower*
  bound seen so far, ``T = max_j(S_min_j) - alpha * radius`` (Eq. 4).  Using
  lower bounds means the threshold never overshoots the true maximum.
* **Step 1 — comparison**: token ``j`` survives while its *upper* bound
  exceeds the threshold, ``S_max_j > T``.  Pruning on the upper bound means a
  token is only dropped when even its most optimistic score is more than
  ``alpha * radius`` below a score some other token is *guaranteed* to reach.

Consequently any token whose exact logit is within ``alpha * radius`` of the
exact row maximum is never pruned — the guarantee the property tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["PruneDecision", "GuardedFilter"]


@dataclass(frozen=True)
class PruneDecision:
    """Outcome of one comparison round for a batch of candidate tokens."""

    keep: np.ndarray  # bool mask over candidates
    threshold: float  # the T used for this round (integer-score units)


@dataclass
class GuardedFilter:
    """Stateful guarded filter for a single query row.

    The hardware instantiates one BUI-GF module per PE row (Fig. 11d); each
    module keeps a running maximum of score lower bounds and broadcasts the
    resulting threshold to all lanes in its row.  ``guard`` is the product
    ``alpha * radius`` converted to integer-score units by the caller.

    Attributes
    ----------
    guard:
        Pruning margin in integer-score units; larger = more conservative.
    max_lower_bound:
        Running ``max_j S_min_j`` over every token observed so far (pruned
        tokens' last bounds remain valid contributions, as only the max
        matters).
    """

    guard: float
    max_lower_bound: float = field(default=-np.inf)

    def observe(self, lower_bounds: np.ndarray) -> float:
        """Step 0 — fold new score lower bounds into the running maximum."""
        lb = np.asarray(lower_bounds, dtype=np.float64)
        if lb.size:
            self.max_lower_bound = max(self.max_lower_bound, float(lb.max()))
        return self.max_lower_bound

    @property
    def threshold(self) -> float:
        """Current pruning threshold ``T`` (Eq. 4)."""
        if np.isinf(self.guard):
            return -np.inf
        return self.max_lower_bound - self.guard

    def decide(self, upper_bounds: np.ndarray) -> PruneDecision:
        """Step 1 — keep tokens whose upper bound clears the threshold.

        The comparison is inclusive so the row-maximum token itself always
        survives even at a zero guard (its bound equals the threshold).
        """
        ub = np.asarray(upper_bounds, dtype=np.float64)
        t = self.threshold
        return PruneDecision(keep=ub >= t, threshold=t)

    def filter_round(
        self,
        lower_bounds: np.ndarray,
        upper_bounds: np.ndarray,
        protect: Optional[np.ndarray] = None,
    ) -> PruneDecision:
        """One full BUI-GF round: update the threshold, then compare.

        ``protect`` optionally marks tokens that must survive regardless
        (attention sinks / recency window in :class:`~repro.core.config.PadeConfig`).
        """
        self.observe(lower_bounds)
        decision = self.decide(upper_bounds)
        if protect is not None:
            keep = decision.keep | np.asarray(protect, dtype=bool)
            decision = PruneDecision(keep=keep, threshold=decision.threshold)
        return decision


def guard_in_int_units(alpha: float, radius: float, logit_scale: float) -> float:
    """Convert the logit-domain guard ``alpha * radius`` into integer scores.

    ``logit_scale`` is the factor mapping integer scores to logits
    (``s_q * s_k / sqrt(H)`` when logits are scaled); the integer-domain guard
    is the logit guard divided by it.  A zero scale (degenerate all-zero
    input) maps to an infinite guard, i.e. no pruning.
    """
    if np.isinf(radius):
        return float("inf")
    if logit_scale <= 0:
        return float("inf")
    return alpha * radius / logit_scale
