"""Bit-serial-enabled stage fusion (BSF): the unified predict/execute loop.

This module gives the *functional semantics* of PADE's fused pipeline
(Fig. 4b): the Key matrix is consumed one MSB-first bit plane at a time, a
guarded filter prunes tokens as soon as their score upper bound falls below
the threshold, and survivors' partial scores are *reused* — the bits spent on
speculation are exactly the high-order bits of the final product, so the
remaining work per retained token is only its not-yet-processed planes.
Timing/energy behaviour (OOE, scoreboard capacity, DRAM) lives in
:mod:`repro.sim`; correctness and sparsity statistics live here.

Two entry points:

* :func:`bsf_filter_row` — one query row against all keys (the unit the
  hardware maps onto one PE row).
* :func:`bsf_filter` — a batch of query rows (prefill-style).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.bui import BUILookupTable, build_bui_lut
from repro.core.bui_gf import GuardedFilter
from repro.quant.bitplane import BitPlanes, plane_weights

__all__ = ["BSFRowResult", "BSFResult", "bsf_filter_row", "bsf_filter"]


@dataclass(frozen=True)
class BSFRowResult:
    """Outcome of the fused speculate+execute loop for one query row.

    Attributes
    ----------
    retained:
        Bool mask over keys — tokens that reached the LSB unpruned (the
        tile-level retention rule of §IV-C).
    planes_processed:
        Per-key count of bit planes consumed before pruning/completion
        (0 for keys masked out a priori, ``bits`` for retained keys).
    scores:
        Exact integer scores ``Q_i · K_j`` for retained keys (0 elsewhere);
        retained keys' scores are exact because all planes were folded in —
        the "result reuse" of the scoreboard PE lane.
    bit_plane_loads:
        Total number of (key, plane) fetches — the memory-side cost.
    effective_bit_ops:
        Total additions under bidirectional sparsity,
        ``sum over processed planes of min(popcount, H - popcount)``.
    naive_bit_ops:
        Additions a plain bit-serial design would do (popcount of each
        processed plane) — the BS savings denominator.
    threshold_trace:
        Threshold value after each round (length = rounds executed).
    """

    retained: np.ndarray
    planes_processed: np.ndarray
    scores: np.ndarray
    bit_plane_loads: int
    effective_bit_ops: int
    naive_bit_ops: int
    threshold_trace: np.ndarray

    @property
    def sparsity(self) -> float:
        """Fraction of candidate keys pruned (1 - retained/candidates)."""
        candidates = int((self.planes_processed > 0).sum())
        if candidates == 0:
            return 0.0
        return 1.0 - float(self.retained.sum()) / candidates


@dataclass(frozen=True)
class BSFResult:
    """Batched :class:`BSFRowResult` for ``P`` query rows against ``S`` keys."""

    retained: np.ndarray  # (P, S) bool
    planes_processed: np.ndarray  # (P, S) int
    scores: np.ndarray  # (P, S) int64, exact where retained
    bit_plane_loads: int
    effective_bit_ops: int
    naive_bit_ops: int

    @property
    def sparsity(self) -> float:
        candidates = int((self.planes_processed > 0).sum())
        if candidates == 0:
            return 0.0
        return 1.0 - float(self.retained.sum()) / candidates

    @property
    def mean_planes(self) -> float:
        """Average planes fetched per candidate key — the early-termination win."""
        mask = self.planes_processed > 0
        if not mask.any():
            return 0.0
        return float(self.planes_processed[mask].mean())


def bsf_filter_row(
    q_row: np.ndarray,
    key_planes: BitPlanes,
    guard: float,
    lut: Optional[BUILookupTable] = None,
    allowed: Optional[np.ndarray] = None,
    protect: Optional[np.ndarray] = None,
    gfilter: Optional[GuardedFilter] = None,
) -> BSFRowResult:
    """Run the fused bit-serial filter for one integer query row.

    Parameters
    ----------
    q_row:
        Integer query vector, shape ``(H,)``.
    key_planes:
        Bit planes of the integer Key matrix, value shape ``(S, H)``.
    guard:
        ``alpha * radius`` in integer-score units (see
        :func:`repro.core.bui_gf.guard_in_int_units`).
    lut:
        Precomputed BUI LUT for this query (built on the fly if omitted).
    allowed:
        Bool mask of candidate keys (e.g. causal visibility); others are
        never fetched.
    protect:
        Bool mask of keys that must survive (sink/recency protection).
    gfilter:
        Externally owned :class:`GuardedFilter`.  ISTA passes a filter that
        persists across observation windows so the threshold keeps tightening
        as more of the row is seen (Eq. 7 subset safety); when omitted a
        fresh filter is created.
    """
    q = np.asarray(q_row, dtype=np.int64)
    bits = key_planes.bits
    num_keys, head_dim = key_planes.value_shape
    if q.shape != (head_dim,):
        raise ValueError(f"query shape {q.shape} does not match head dim {head_dim}")
    if lut is None:
        lut = build_bui_lut(q[None, :], bits=bits)

    alive = np.ones(num_keys, dtype=bool) if allowed is None else np.asarray(allowed, bool).copy()
    protected = (
        np.zeros(num_keys, dtype=bool) if protect is None else np.asarray(protect, bool)
    )
    partial = np.zeros(num_keys, dtype=np.int64)
    planes_processed = np.zeros(num_keys, dtype=np.int64)
    weights = plane_weights(bits)
    if gfilter is None:
        gfilter = GuardedFilter(guard=guard)

    bit_plane_loads = 0
    effective_bit_ops = 0
    naive_bit_ops = 0
    thresholds = []

    for r in range(bits):
        idx = np.flatnonzero(alive)
        if idx.size == 0:
            break
        plane = key_planes.planes[r][idx].astype(np.int64)  # (A, H)
        partial[idx] += weights[r] * (plane @ q)
        planes_processed[idx] = r + 1
        bit_plane_loads += idx.size
        popcounts = plane.sum(axis=1)
        naive_bit_ops += int(popcounts.sum())
        effective_bit_ops += int(np.minimum(popcounts, head_dim - popcounts).sum())

        lb = partial[idx] + lut.i_min[0, r + 1]
        ub = partial[idx] + lut.i_max[0, r + 1]
        decision = gfilter.filter_round(lb, ub, protect=protected[idx])
        thresholds.append(decision.threshold)
        alive[idx] = decision.keep

    retained = alive  # survived every plane without pruning
    scores = np.where(retained, partial, 0)
    return BSFRowResult(
        retained=retained,
        planes_processed=planes_processed,
        scores=scores,
        bit_plane_loads=bit_plane_loads,
        effective_bit_ops=effective_bit_ops,
        naive_bit_ops=naive_bit_ops,
        threshold_trace=np.asarray(thresholds, dtype=np.float64),
    )


def bsf_filter(
    q_int: np.ndarray,
    key_planes: BitPlanes,
    guard: float,
    allowed: Optional[np.ndarray] = None,
    protect: Optional[np.ndarray] = None,
) -> BSFResult:
    """Batched fused filter: ``P`` query rows against the shared Key planes.

    ``allowed`` / ``protect`` may be ``(S,)`` (shared) or ``(P, S)``.
    """
    q = np.atleast_2d(np.asarray(q_int, dtype=np.int64))
    num_queries = q.shape[0]
    num_keys = key_planes.value_shape[0]
    lut = build_bui_lut(q, bits=key_planes.bits)

    def row_mask(mask: Optional[np.ndarray], i: int) -> Optional[np.ndarray]:
        if mask is None:
            return None
        arr = np.asarray(mask, dtype=bool)
        return arr[i] if arr.ndim == 2 else arr

    retained = np.zeros((num_queries, num_keys), dtype=bool)
    planes = np.zeros((num_queries, num_keys), dtype=np.int64)
    scores = np.zeros((num_queries, num_keys), dtype=np.int64)
    loads = ops = naive = 0
    for i in range(num_queries):
        row_lut = BUILookupTable(
            i_min=lut.i_min[i : i + 1], i_max=lut.i_max[i : i + 1], bits=lut.bits
        )
        res = bsf_filter_row(
            q[i],
            key_planes,
            guard,
            lut=row_lut,
            allowed=row_mask(allowed, i),
            protect=row_mask(protect, i),
        )
        retained[i] = res.retained
        planes[i] = res.planes_processed
        scores[i] = res.scores
        loads += res.bit_plane_loads
        ops += res.effective_bit_ops
        naive += res.naive_bit_ops
    return BSFResult(
        retained=retained,
        planes_processed=planes,
        scores=scores,
        bit_plane_loads=loads,
        effective_bit_ops=ops,
        naive_bit_ops=naive,
    )
