"""BUI under the MXINT micro-scaling format (paper §VI-F, Fig. 25).

MXINT quantizes Q and K in 32-element channel groups, each with its own
scale.  The dot product then decomposes per group:

    A = sum_g  dQ_g * dK_g * (Q_g^int · K_g^int)

Since each group-local integer dot product has its own bit-wise uncertainty
interval (computed exactly as in :mod:`repro.core.bui`), the overall interval
is obtained by (1) scaling each group interval by ``dQ_g * dK_g`` and
(2) summing minima and maxima across groups — the two steps in Fig. 25(b).
The result bounds the *float-domain* score, so guarded filtering proceeds
unchanged on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.quant.bitplane import BitPlanes, decompose_bitplanes, plane_weights, unknown_weight_sum
from repro.quant.mxint import MXQuantizedTensor

__all__ = ["MXBUILookupTable", "build_mx_bui_lut", "mx_partial_score", "mx_score_bounds"]


@dataclass(frozen=True)
class MXBUILookupTable:
    """Group-wise uncertainty-mass table for one batch of MX queries.

    ``pos_mass`` / ``neg_mass`` have shape ``(num_queries, num_groups)`` and
    hold ``sum(max(q, 0))`` / ``sum(min(q, 0))`` of each query group's
    *integer* payload.  The interval after ``r`` known Key planes is

        I_min = W(r) * sum_g scale_g * neg_mass_g
        I_max = W(r) * sum_g scale_g * pos_mass_g

    where ``scale_g = dQ_g * dK_g`` couples the query LUT with the Key
    token's group scales at decision time (the hardware expands the LUT with
    the calibration factors, step 1 of Fig. 25b).
    """

    pos_mass: np.ndarray
    neg_mass: np.ndarray
    bits: int
    group_size: int

    def interval(
        self, query_index: int, k_group_scales: np.ndarray, q_group_scales: np.ndarray,
        planes_known: int,
    ) -> Tuple[float, float]:
        """Float-domain ``(I_min, I_max)`` for one (query, key) pair."""
        w = unknown_weight_sum(self.bits, planes_known)
        coupling = np.asarray(q_group_scales, np.float64) * np.asarray(k_group_scales, np.float64)
        i_min = w * float((coupling * self.neg_mass[query_index]).sum())
        i_max = w * float((coupling * self.pos_mass[query_index]).sum())
        return i_min, i_max


def build_mx_bui_lut(q_mx: MXQuantizedTensor) -> MXBUILookupTable:
    """Build the group-wise BUI mass table from an MX-quantized query batch."""
    q = np.atleast_2d(q_mx.data)
    num_queries = q.shape[0]
    num_groups = q.shape[1] // q_mx.group_size
    grouped = q.reshape(num_queries, num_groups, q_mx.group_size).astype(np.int64)
    pos = np.where(grouped > 0, grouped, 0).sum(axis=2)
    neg = np.where(grouped < 0, grouped, 0).sum(axis=2)
    return MXBUILookupTable(
        pos_mass=pos, neg_mass=neg, bits=q_mx.bits, group_size=q_mx.group_size
    )


def mx_partial_score(
    q_row_int: np.ndarray,
    k_row_planes: BitPlanes,
    q_group_scales: np.ndarray,
    k_group_scales: np.ndarray,
    group_size: int,
    planes_known: int,
) -> float:
    """Conservative float-domain partial score after ``planes_known`` planes.

    Group-local integer partial dot products (unknown bits zero) are scaled
    by ``dQ_g * dK_g`` and summed — the MX analogue of ``S^r`` in Eq. (3).
    """
    q = np.asarray(q_row_int, dtype=np.int64)
    head_dim = q.size
    weights = plane_weights(k_row_planes.bits)
    k_partial = np.zeros(head_dim, dtype=np.int64)
    for r in range(planes_known):
        k_partial += weights[r] * k_row_planes.planes[r].astype(np.int64)
    num_groups = head_dim // group_size
    total = 0.0
    for g in range(num_groups):
        sl = slice(g * group_size, (g + 1) * group_size)
        total += float(q_group_scales[g]) * float(k_group_scales[g]) * float(
            np.dot(q[sl], k_partial[sl])
        )
    return total


def mx_score_bounds(
    q_mx: MXQuantizedTensor,
    k_mx: MXQuantizedTensor,
    query_index: int,
    key_index: int,
    planes_known: int,
) -> Tuple[float, float]:
    """Float-domain ``(S_min, S_max)`` for one MX (query, key) pair.

    Convenience wrapper combining :func:`mx_partial_score` with the scaled
    group intervals; used by the Fig. 25 bench and the soundness tests.
    """
    q_data = np.atleast_2d(q_mx.data)
    k_data = np.atleast_2d(k_mx.data)
    q_scales = np.atleast_2d(q_mx.scales)
    k_scales = np.atleast_2d(k_mx.scales)
    lut = build_mx_bui_lut(q_mx)
    k_planes = decompose_bitplanes(k_data[key_index], bits=k_mx.bits)
    s_partial = mx_partial_score(
        q_data[query_index],
        k_planes,
        q_scales[query_index],
        k_scales[key_index],
        q_mx.group_size,
        planes_known,
    )
    i_min, i_max = lut.interval(
        query_index, k_scales[key_index], q_scales[query_index], planes_known
    )
    return s_partial + i_min, s_partial + i_max
