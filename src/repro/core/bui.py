"""Bit-wise uncertainty intervals (BUI, paper §IV-A).

After processing the first ``r`` MSB-first bit planes of a Key vector, the
exact dot product ``Q_i · K_j`` can deviate from the conservative partial
score ``S^r`` (unknown bits treated as zero) by at most the contribution of
the remaining planes.  Because every non-sign bit has a positive weight
(Eq. 2), setting all unknown bits of K to 1 where ``q > 0`` / to 0 where
``q < 0`` yields the largest possible score, and the flipped assignment the
smallest (Fig. 6):

    I_max(r) = W(r) * sum(max(q, 0))        I_min(r) = W(r) * sum(min(q, 0))
    S_max    = S^r + I_max                  S_min    = S^r + I_min

with ``W(r) = 2^(bits - r) - 1`` the total weight of unknown planes.  The
intervals depend only on the *query*, so the hardware precomputes one
(I_min, I_max) pair per plane count in a per-query LUT (Fig. 11c) — that LUT
is what :class:`BUILookupTable` models.

Validation against the paper's worked example (Fig. 6, Q = [6, -5, 9, -4],
six fractional planes ≡ our integer planes scaled by 4): after the MSB,
I = (-69.75, +116.25); after two planes, I = (-33.75, +56.25).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.quant.bitplane import unknown_weight_sum

__all__ = ["BUILookupTable", "build_bui_lut", "uncertainty_interval"]


def uncertainty_interval(
    q_row: np.ndarray, bits: int, planes_known: int
) -> Tuple[int, int]:
    """Return ``(I_min, I_max)`` for one query row after ``planes_known`` planes.

    ``q_row`` is the integer query vector (any length).  The result bounds the
    *additional* contribution of the still-unknown Key planes to the dot
    product, exactly per Eq. (3).
    """
    q = np.asarray(q_row, dtype=np.int64)
    w = unknown_weight_sum(bits, planes_known)
    pos = int(q[q > 0].sum())
    neg = int(q[q < 0].sum())
    return w * neg, w * pos


@dataclass(frozen=True)
class BUILookupTable:
    """Per-query LUT of uncertainty intervals, one pair per plane count.

    ``i_min`` / ``i_max`` have shape ``(num_queries, bits + 1)``; index ``r``
    holds the interval after ``r`` planes are known (``r = 0`` is the trivial
    "nothing known" row, ``r = bits`` is the exact point interval (0, 0)).
    This mirrors the hardware BUI Generator, which fills an 8-entry LUT per
    query before the QK computation starts (§V-B step 1).
    """

    i_min: np.ndarray
    i_max: np.ndarray
    bits: int

    @property
    def num_queries(self) -> int:
        return self.i_min.shape[0]

    def interval(self, query_index: int, planes_known: int) -> Tuple[int, int]:
        """LUT read: interval for one query at a given plane count."""
        return (
            int(self.i_min[query_index, planes_known]),
            int(self.i_max[query_index, planes_known]),
        )

    def bound_scores(
        self, partial_scores: np.ndarray, planes_known: np.ndarray, query_index: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized ``(S_min, S_max)`` for one query against many tokens.

        ``partial_scores`` holds conservative partial scores ``S^r`` and
        ``planes_known`` the per-token plane counts ``r`` (same shape).
        """
        r = np.asarray(planes_known, dtype=np.int64)
        lo = partial_scores + self.i_min[query_index, r]
        hi = partial_scores + self.i_max[query_index, r]
        return lo, hi


def build_bui_lut(q_int: np.ndarray, bits: int = 8) -> BUILookupTable:
    """Build the BUI LUT for a batch of integer query rows.

    Parameters
    ----------
    q_int:
        Integer query matrix of shape ``(num_queries, head_dim)``.
    bits:
        Bit width of the Key operand being processed serially.
    """
    q = np.atleast_2d(np.asarray(q_int, dtype=np.int64))
    pos = np.where(q > 0, q, 0).sum(axis=1)  # (num_queries,)
    neg = np.where(q < 0, q, 0).sum(axis=1)
    # W(0) covers "no planes known": all bits unknown. The sign plane's weight
    # is negative, so the true r=0 bound is asymmetric; the hardware never
    # consults r=0 (the MSB is always processed first), so we store the r=1
    # interval widened by the sign plane for completeness.
    weights = np.empty(bits + 1, dtype=np.int64)
    for r in range(1, bits + 1):
        weights[r] = unknown_weight_sum(bits, r)
    sign_weight = 1 << (bits - 1)
    i_min = np.outer(neg, weights).astype(np.int64)
    i_max = np.outer(pos, weights).astype(np.int64)
    # r = 0: unknown sign bit contributes in [-sign_weight * pos, -sign_weight * neg]
    # on top of the r = 1 magnitude interval.
    i_min[:, 0] = i_min[:, 1] - sign_weight * pos
    i_max[:, 0] = i_max[:, 1] - sign_weight * neg
    return BUILookupTable(i_min=i_min, i_max=i_max, bits=bits)
