"""End-to-end functional PADE attention operator.

This is the public entry point a downstream user calls: float Q/K/V in,
attention output out, with the full predictor-free pipeline in between —
symmetric INT8 quantization, bit-plane decomposition of K, BUI-guarded
bit-serial filtering fused with execution, and ISTA tiling with head-tail
interleaved updates.  Timing/energy simulation consumes the statistics this
operator returns (see :mod:`repro.sim.accelerator`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.bui_gf import guard_in_int_units
from repro.core.config import PadeConfig
from repro.core.ista import ISTAResult, ISTAStats, ista_attention
from repro.quant.bitplane import BitPlanes, decompose_bitplanes
from repro.quant.integer import QuantizedTensor, quantize_symmetric

__all__ = ["PadeAttentionResult", "pade_attention", "causal_allowed", "protection_mask"]


@dataclass(frozen=True)
class PadeAttentionResult:
    """Everything the fused pipeline produces for one attention head.

    Attributes
    ----------
    output:
        Attention output, shape ``(P, Hv)``.
    retained:
        Bool mask ``(P, S)`` of keys that survived guarded filtering.
    stats:
        Aggregated :class:`~repro.core.ista.ISTAStats` counters.
    q_int / k_int:
        The quantized operands actually processed (useful for the simulator
        and for audit).
    guard_int:
        The guard used, in integer-score units.
    logit_scale:
        Factor mapping integer scores to logits.
    """

    output: np.ndarray
    retained: np.ndarray
    stats: ISTAStats
    q_int: QuantizedTensor
    k_int: QuantizedTensor
    guard_int: float
    logit_scale: float

    @property
    def sparsity(self) -> float:
        """Fraction of candidate (query, key) pairs pruned."""
        return self.stats.sparsity

    @property
    def mean_planes_per_candidate(self) -> float:
        """Average bit planes fetched per candidate key (≤ bits)."""
        if self.stats.candidate_keys == 0:
            return 0.0
        return self.stats.bit_plane_loads / self.stats.candidate_keys


def causal_allowed(num_queries: int, num_keys: int, query_offset: int = 0) -> np.ndarray:
    """Causal candidate mask: query ``i`` may attend keys ``<= offset + i``.

    ``query_offset`` positions the query block inside a longer sequence
    (decode steps pass ``num_keys - num_queries``).
    """
    rows = np.arange(num_queries)[:, None] + query_offset
    cols = np.arange(num_keys)[None, :]
    return cols <= rows


def protection_mask(
    num_queries: int,
    num_keys: int,
    sink_tokens: int,
    recent_tokens: int,
    query_offset: int = 0,
) -> Optional[np.ndarray]:
    """Always-keep mask combining attention sinks and a recency window."""
    if sink_tokens == 0 and recent_tokens == 0:
        return None
    protect = np.zeros((num_queries, num_keys), dtype=bool)
    if sink_tokens:
        protect[:, : min(sink_tokens, num_keys)] = True
    if recent_tokens:
        for i in range(num_queries):
            end = min(query_offset + i + 1, num_keys)
            start = max(0, end - recent_tokens)
            protect[i, start:end] = True
    return protect


def pade_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    config: Optional[PadeConfig] = None,
    query_offset: int = 0,
) -> PadeAttentionResult:
    """Compute PADE sparse attention for one head.

    Parameters
    ----------
    q:
        Float queries, shape ``(P, H)`` (or ``(H,)`` for a single decode row).
    k:
        Float keys, shape ``(S, H)``.
    v:
        Float values, shape ``(S, Hv)``.
    config:
        :class:`PadeConfig`; defaults to the paper's standard point.
    query_offset:
        Position of the first query within the key sequence (for causal
        masking during decode).
    """
    cfg = config or PadeConfig.standard()
    q = np.atleast_2d(np.asarray(q, dtype=np.float64))
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    if q.shape[1] != k.shape[1]:
        raise ValueError(f"head dims differ: Q has {q.shape[1]}, K has {k.shape[1]}")
    if k.shape[0] != v.shape[0]:
        raise ValueError("K and V must have the same sequence length")
    num_queries, head_dim = q.shape
    num_keys = k.shape[0]

    q_int = quantize_symmetric(q, bits=cfg.bits)
    k_int = quantize_symmetric(k, bits=cfg.bits)
    key_planes: BitPlanes = decompose_bitplanes(k_int.data, bits=cfg.bits)

    logit_scale = float(q_int.scale) * float(k_int.scale)
    if cfg.scale_logits:
        logit_scale /= np.sqrt(head_dim)
    guard = guard_in_int_units(cfg.alpha, cfg.radius, logit_scale)

    allowed = causal_allowed(num_queries, num_keys, query_offset) if cfg.causal else None
    protect = protection_mask(
        num_queries, num_keys, cfg.sink_tokens, cfg.recent_tokens, query_offset
    )

    res: ISTAResult = ista_attention(
        q_int.data,
        key_planes,
        v,
        guard,
        logit_scale,
        tile_size=cfg.tile_size,
        interleave=cfg.head_tail_interleave,
        allowed=allowed,
        protect=protect,
        backend=cfg.backend,
    )
    return PadeAttentionResult(
        output=res.output,
        retained=res.retained,
        stats=res.stats,
        q_int=q_int,
        k_int=k_int,
        guard_int=guard,
        logit_scale=logit_scale,
    )
