"""Core PADE algorithms: the paper's primary contribution.

* :mod:`repro.core.bui` — bit-wise uncertainty intervals (paper Eq. 2-3).
* :mod:`repro.core.bui_gf` — BUI-enabled guarded filtering (Eq. 4, Fig. 7).
* :mod:`repro.core.bs` — bidirectional bit sparsity (Eq. 5-6).
* :mod:`repro.core.bsf` — the bit-serial stage-fusion loop that unifies
  sparsity prediction and execution (Fig. 4b), with per-token early
  termination and full statistics.
* :mod:`repro.core.ista` — interleaving-based sparsity-tiled attention
  (Fig. 10c) with head-tail interleaved tile updating.
* :mod:`repro.core.mx` — BUI generalized to the MXINT group format (Fig. 25).
* :mod:`repro.core.pade_attention` — the end-to-end functional attention
  operator a downstream user calls.
* :mod:`repro.core.backend` — the pluggable kernel-backend registry
  (``"reference"`` / ``"fast"``) every layer dispatches the fused filter
  through; see also :mod:`repro.engine` for the batched serving layer.
"""

from repro.core.config import PadeConfig
from repro.core.bui import BUILookupTable, build_bui_lut, uncertainty_interval
from repro.core.bui_gf import GuardedFilter, PruneDecision
from repro.core.bs import BidirectionalPlan, plan_plane, bs_partial_dot, effective_bits
from repro.core.bsf import BSFResult, bsf_filter_row, bsf_filter
from repro.core.ista import ISTAResult, ista_attention, head_tail_order
from repro.core.mx import MXBUILookupTable, build_mx_bui_lut
from repro.core.pade_attention import PadeAttentionResult, pade_attention
from repro.core.bsf_fast import bsf_filter_fast, bsf_filter_fast_heads
from repro.core.bsf_fast_batch import bsf_filter_fast_batch
from repro.core.backend import (
    FastBackend,
    KernelBackend,
    ReferenceBackend,
    available_backends,
    get_backend,
    register_backend,
    set_default_backend,
)
from repro.core.multibit import MultiBitResult, multibit_filter, multibit_filter_row
from repro.core.fp_query import AlignedQuery, align_query, fp_bsf_filter_row
from repro.core.validate import ValidationReport, validate_partial_scores, validate_retention

__all__ = [
    "PadeConfig",
    "BUILookupTable",
    "build_bui_lut",
    "uncertainty_interval",
    "GuardedFilter",
    "PruneDecision",
    "BidirectionalPlan",
    "plan_plane",
    "bs_partial_dot",
    "effective_bits",
    "BSFResult",
    "bsf_filter_row",
    "bsf_filter",
    "ISTAResult",
    "ista_attention",
    "head_tail_order",
    "MXBUILookupTable",
    "build_mx_bui_lut",
    "PadeAttentionResult",
    "pade_attention",
    "bsf_filter_fast",
    "bsf_filter_fast_heads",
    "bsf_filter_fast_batch",
    "KernelBackend",
    "ReferenceBackend",
    "FastBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "set_default_backend",
    "MultiBitResult",
    "multibit_filter",
    "multibit_filter_row",
    "AlignedQuery",
    "align_query",
    "fp_bsf_filter_row",
    "ValidationReport",
    "validate_partial_scores",
    "validate_retention",
]
