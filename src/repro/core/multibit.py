"""Multi-bit stage fusion (the paper's §VI-G future-work direction).

Single-bit BSF makes a pruning decision after *every* plane, which maximizes
early-termination opportunities but pays a decision (threshold compare +
scoreboard round trip) per plane.  Multi-bit fusion consumes ``group`` MSB
planes per round: per-round work grows, decision overhead and scoreboard
traffic shrink, and the uncertainty interval after each round is exactly the
single-bit interval at the same plane count — so safety is untouched.

The trade-off this module exposes (see ``bench_ablation_multibit``):

* ``group = 1``: finest termination — minimum plane fetches, maximum
  decision overhead (the shipping PADE design);
* ``group = 2/4``: ≤ one extra plane per pruned token on average, but 2–4×
  fewer decisions and scoreboard accesses;
* ``group = bits``: degenerates to value-level execution (single decision,
  no early termination).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.bui import BUILookupTable, build_bui_lut
from repro.core.bui_gf import GuardedFilter
from repro.quant.bitplane import BitPlanes, plane_weights

__all__ = ["MultiBitResult", "multibit_filter_row", "multibit_filter"]


@dataclass(frozen=True)
class MultiBitResult:
    """Outcome of the grouped fused filter for one query row."""

    retained: np.ndarray
    planes_processed: np.ndarray  # plane count, always a multiple of `group`
    scores: np.ndarray
    bit_plane_loads: int
    decision_rounds: int  # threshold-compare rounds actually executed
    group: int

    @property
    def sparsity(self) -> float:
        candidates = int((self.planes_processed > 0).sum())
        if candidates == 0:
            return 0.0
        return 1.0 - float(self.retained.sum()) / candidates

    @property
    def mean_planes(self) -> float:
        mask = self.planes_processed > 0
        return float(self.planes_processed[mask].mean()) if mask.any() else 0.0


def multibit_filter_row(
    q_row: np.ndarray,
    key_planes: BitPlanes,
    guard: float,
    group: int = 2,
    lut: Optional[BUILookupTable] = None,
    allowed: Optional[np.ndarray] = None,
    protect: Optional[np.ndarray] = None,
    backend=None,
) -> MultiBitResult:
    """Fused filter consuming ``group`` bit planes per decision round.

    Semantics match :func:`repro.core.bsf.bsf_filter_row` with decisions
    made only at plane counts that are multiples of ``group``; with
    ``group=1`` the two are identical (tested invariant), and that case is
    dispatched to the configured kernel backend
    (:mod:`repro.core.backend`) rather than re-implemented here.
    """
    q = np.asarray(q_row, dtype=np.int64)
    if group == 1:
        from repro.core.backend import get_backend

        res = get_backend(backend).filter_row(
            q, key_planes, guard, lut=lut, allowed=allowed, protect=protect
        )
        return MultiBitResult(
            retained=res.retained,
            planes_processed=res.planes_processed,
            scores=res.scores,
            bit_plane_loads=res.bit_plane_loads,
            decision_rounds=int(res.threshold_trace.size),
            group=1,
        )
    bits = key_planes.bits
    if bits % group != 0:
        raise ValueError(f"group {group} must divide operand bits {bits}")
    num_keys, head_dim = key_planes.value_shape
    if q.shape != (head_dim,):
        raise ValueError(f"query shape {q.shape} does not match head dim {head_dim}")
    if lut is None:
        lut = build_bui_lut(q[None, :], bits=bits)

    alive = np.ones(num_keys, dtype=bool) if allowed is None else np.asarray(allowed, bool).copy()
    protected = np.zeros(num_keys, dtype=bool) if protect is None else np.asarray(protect, bool)
    partial = np.zeros(num_keys, dtype=np.int64)
    planes_processed = np.zeros(num_keys, dtype=np.int64)
    weights = plane_weights(bits)
    gfilter = GuardedFilter(guard=guard)

    loads = 0
    rounds = 0
    for start in range(0, bits, group):
        idx = np.flatnonzero(alive)
        if idx.size == 0:
            break
        for r in range(start, start + group):
            plane = key_planes.planes[r][idx].astype(np.int64)
            partial[idx] += weights[r] * (plane @ q)
            loads += idx.size
        planes_processed[idx] = start + group
        rounds += 1
        known = start + group
        lb = partial[idx] + lut.i_min[0, known]
        ub = partial[idx] + lut.i_max[0, known]
        decision = gfilter.filter_round(lb, ub, protect=protected[idx])
        alive[idx] = decision.keep

    return MultiBitResult(
        retained=alive,
        planes_processed=planes_processed,
        scores=np.where(alive, partial, 0),
        bit_plane_loads=loads,
        decision_rounds=rounds,
        group=group,
    )


def multibit_filter(
    q_int: np.ndarray,
    key_planes: BitPlanes,
    guard: float,
    group: int = 2,
    allowed: Optional[np.ndarray] = None,
    backend=None,
) -> "list[MultiBitResult]":
    """Batched grouped filter (one result per query row)."""
    q = np.atleast_2d(np.asarray(q_int, dtype=np.int64))
    lut = build_bui_lut(q, bits=key_planes.bits)
    results = []
    for i in range(q.shape[0]):
        row_lut = BUILookupTable(
            i_min=lut.i_min[i : i + 1], i_max=lut.i_max[i : i + 1], bits=lut.bits
        )
        mask = None
        if allowed is not None:
            arr = np.asarray(allowed, dtype=bool)
            mask = arr[i] if arr.ndim == 2 else arr
        results.append(
            multibit_filter_row(
                q[i], key_planes, guard, group=group, lut=row_lut, allowed=mask, backend=backend
            )
        )
    return results
