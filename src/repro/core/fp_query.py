"""FP-format queries via exponent alignment (paper §VI-F, FP extension).

K/V quantize safely to INT8 (softmax normalization suppresses their
quantization noise), but a deployment may keep Q in floating point.  PADE
handles this by *exponent alignment* (following BitMod/FIGNA-style FP-INT
units): the FP query row is decomposed into a shared power-of-two exponent
and an integer mantissa row, the bit-serial pipeline runs unchanged on the
mantissas, and results/intervals are rescaled by the shared exponent.

Because the alignment is exact up to mantissa truncation, the BUI bounds
computed on the aligned mantissas remain sound for the *aligned* product,
and the truncation error is bounded by ``2^(exp) * n * |k|_max`` — accounted
here by widening the guard, so no false pruning is introduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.bsf import BSFRowResult
from repro.quant.bitplane import BitPlanes

__all__ = ["AlignedQuery", "align_query", "fp_bsf_filter_row"]


@dataclass(frozen=True)
class AlignedQuery:
    """An FP query row expressed as ``mantissa * 2^exponent``."""

    mantissa: np.ndarray  # int64, fits the mantissa bit width
    exponent: int  # shared power-of-two scale
    truncation_error: float  # max |q - mantissa * 2^exponent| per element

    def reconstruct(self) -> np.ndarray:
        return self.mantissa.astype(np.float64) * (2.0 ** self.exponent)


def align_query(q_row: np.ndarray, mantissa_bits: int = 12) -> AlignedQuery:
    """Align one FP query row to a shared exponent + integer mantissas.

    The shared exponent is chosen so the largest |q| fills the mantissa
    range; smaller elements lose their sub-ulp fraction (the truncation the
    guard widening covers).
    """
    q = np.asarray(q_row, dtype=np.float64)
    max_abs = float(np.max(np.abs(q))) if q.size else 0.0
    if max_abs == 0.0:
        return AlignedQuery(np.zeros(q.shape, dtype=np.int64), 0, 0.0)
    qmax = (1 << (mantissa_bits - 1)) - 1
    exponent = int(np.ceil(np.log2(max_abs / qmax)))
    scale = 2.0 ** exponent
    mantissa = np.floor(q / scale + 0.5).astype(np.int64)
    mantissa = np.clip(mantissa, -qmax - 1, qmax)
    err = float(np.max(np.abs(q - mantissa * scale)))
    return AlignedQuery(mantissa=mantissa, exponent=exponent, truncation_error=err)


def fp_bsf_filter_row(
    q_row_fp: np.ndarray,
    key_planes: BitPlanes,
    guard_logits: float,
    logit_scale_k: float,
    mantissa_bits: int = 12,
    backend=None,
) -> Tuple[BSFRowResult, AlignedQuery]:
    """Run the fused filter with an FP query row.

    Parameters
    ----------
    q_row_fp:
        Float query row (no prior quantization).
    key_planes:
        INT-K bit planes.
    guard_logits:
        Guard in logit units.
    logit_scale_k:
        Factor mapping (aligned-int score) × 2^exponent to logits, i.e. the
        K scale divided by sqrt(H) — the query side is exact by alignment.
    mantissa_bits:
        Mantissa width of the alignment (wider = less truncation).
    backend:
        Kernel backend name or instance; ``None`` resolves via the
        registry (:mod:`repro.core.backend`).
    """
    from repro.core.backend import get_backend

    aligned = align_query(np.asarray(q_row_fp, dtype=np.float64), mantissa_bits)
    head_dim = key_planes.value_shape[1]
    scale = (2.0 ** aligned.exponent) * logit_scale_k
    if scale <= 0:
        guard_int = float("inf")
    else:
        guard_int = guard_logits / scale
        # Widen by the worst-case truncation contribution (sum over dims of
        # |k|_max x per-element truncation, expressed in aligned-int units)
        # so the FP-exact score still respects the pruning guarantee.
        k_max = (1 << (key_planes.bits - 1)) - 1
        trunc_int = aligned.truncation_error / (2.0 ** aligned.exponent)
        guard_int += 2.0 * head_dim * k_max * trunc_int
    res = get_backend(backend).filter_row(aligned.mantissa, key_planes, guard_int)
    return res, aligned
