"""Pluggable kernel-backend registry for the fused BSF filter.

The repository ships two functionally identical implementations of the
bit-serial stage-fusion filter: the Python-loop reference
(:func:`repro.core.bsf.bsf_filter`) and the round-vectorized fast path
(:func:`repro.core.bsf_fast.bsf_filter_fast`).  Callers used to hand-pick
one by importing it directly; this module puts both behind a single
:class:`KernelBackend` interface so the choice becomes configuration:

* ``PadeConfig.backend`` — per-config selection, flows through
  :func:`repro.core.pade_attention.pade_attention`, ISTA and the simulator;
* ``REPRO_BACKEND`` environment variable — process-wide default;
* :func:`set_default_backend` — session override (the CLI ``--backend``
  flag and the engine use this).

Resolution precedence: explicit name > :func:`set_default_backend` >
``$REPRO_BACKEND`` > ``"fast"``.  Both shipped backends produce identical
:class:`~repro.core.bsf.BSFResult` fields (DESIGN.md §8 invariant), so the
selection only affects speed; third-party backends register via
:func:`register_backend`.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Protocol, Sequence, Tuple, Union, runtime_checkable

import numpy as np

from repro.core.bsf import BSFResult, BSFRowResult, bsf_filter, bsf_filter_row
from repro.core.bsf_fast import bsf_filter_fast, bsf_filter_fast_heads
from repro.core.bsf_fast_batch import bsf_filter_fast_batch
from repro.core.bui import BUILookupTable
from repro.core.bui_gf import GuardedFilter
from repro.quant.bitplane import BitPlanes

__all__ = [
    "KernelBackend",
    "ReferenceBackend",
    "FastBackend",
    "register_backend",
    "available_backends",
    "get_backend",
    "resolve_backend_name",
    "set_default_backend",
    "DEFAULT_BACKEND_ENV",
]

#: Environment variable consulted when no explicit backend is requested.
DEFAULT_BACKEND_ENV = "REPRO_BACKEND"

#: Fallback when neither config, session default, nor env var chooses.
_FALLBACK = "fast"


@runtime_checkable
class KernelBackend(Protocol):
    """One implementation of the fused predict/execute filter.

    A backend must expose the three entry points the stack dispatches on:
    the batched filter (prefill-style blocks), the stateful row filter
    (ISTA's streaming observation windows), and the head-batched filter
    (the engine's multi-head decode rounds).  All backends must return
    bit-identical :class:`BSFResult` fields for the same inputs — only the
    loop structure may differ.

    ``filter_heads_batch`` — the cross-request fused round the continuous
    scheduler dispatches at every decode round — is *optional*: the engine
    probes for it with ``getattr`` and falls back to a per-request
    ``filter_heads`` loop when a third-party backend predates it.  Both
    shipped backends implement it (the reference one as the per-request
    loop itself, so the fallback and the method agree by construction).
    """

    name: str

    def filter(
        self,
        q_int: np.ndarray,
        key_planes: BitPlanes,
        guard: float,
        allowed: Optional[np.ndarray] = None,
        protect: Optional[np.ndarray] = None,
    ) -> BSFResult: ...

    def filter_row(
        self,
        q_row: np.ndarray,
        key_planes: BitPlanes,
        guard: float,
        lut: Optional[BUILookupTable] = None,
        allowed: Optional[np.ndarray] = None,
        protect: Optional[np.ndarray] = None,
        gfilter: Optional[GuardedFilter] = None,
    ) -> BSFRowResult: ...

    def filter_heads(
        self,
        q_int: np.ndarray,
        key_planes: BitPlanes,
        guards: np.ndarray,
        allowed: Optional[np.ndarray] = None,
        protect: Optional[np.ndarray] = None,
    ) -> BSFResult: ...

    def filter_heads_batch(
        self,
        q_ints: Sequence[np.ndarray],
        key_planes: Sequence[BitPlanes],
        guards: Sequence[np.ndarray],
        alloweds: Optional[Sequence[Optional[np.ndarray]]] = None,
        protects: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> List[BSFResult]: ...


class ReferenceBackend:
    """The Python-loop reference kernels (row-at-a-time semantics)."""

    name = "reference"

    def filter(
        self,
        q_int: np.ndarray,
        key_planes: BitPlanes,
        guard: float,
        allowed: Optional[np.ndarray] = None,
        protect: Optional[np.ndarray] = None,
    ) -> BSFResult:
        return bsf_filter(q_int, key_planes, guard, allowed=allowed, protect=protect)

    def filter_row(
        self,
        q_row: np.ndarray,
        key_planes: BitPlanes,
        guard: float,
        lut: Optional[BUILookupTable] = None,
        allowed: Optional[np.ndarray] = None,
        protect: Optional[np.ndarray] = None,
        gfilter: Optional[GuardedFilter] = None,
    ) -> BSFRowResult:
        return bsf_filter_row(
            q_row, key_planes, guard, lut=lut, allowed=allowed, protect=protect, gfilter=gfilter
        )

    def filter_heads(
        self,
        q_int: np.ndarray,
        key_planes: BitPlanes,
        guards: np.ndarray,
        allowed: Optional[np.ndarray] = None,
        protect: Optional[np.ndarray] = None,
    ) -> BSFResult:
        """Head loop over the batched reference filter (stacked results)."""
        q = np.asarray(q_int, dtype=np.int64)
        num_heads, num_rows, _ = q.shape
        num_keys = key_planes.value_shape[1]
        guards = np.broadcast_to(np.asarray(guards, dtype=np.float64), (num_heads,))

        def head_mask(mask: Optional[np.ndarray], h: int) -> Optional[np.ndarray]:
            if mask is None:
                return None
            arr = np.asarray(mask, dtype=bool)
            return arr[h] if arr.ndim == 3 else arr

        retained = np.zeros((num_heads, num_rows, num_keys), dtype=bool)
        planes = np.zeros((num_heads, num_rows, num_keys), dtype=np.int64)
        scores = np.zeros((num_heads, num_rows, num_keys), dtype=np.int64)
        loads = ops = naive = 0
        for h in range(num_heads):
            head_planes = BitPlanes(planes=key_planes.planes[:, h], bits=key_planes.bits)
            res = self.filter(
                q[h], head_planes, float(guards[h]),
                allowed=head_mask(allowed, h), protect=head_mask(protect, h),
            )
            retained[h] = res.retained
            planes[h] = res.planes_processed
            scores[h] = res.scores
            loads += res.bit_plane_loads
            ops += res.effective_bit_ops
            naive += res.naive_bit_ops
        return BSFResult(
            retained=retained,
            planes_processed=planes,
            scores=scores,
            bit_plane_loads=loads,
            effective_bit_ops=ops,
            naive_bit_ops=naive,
        )

    def filter_heads_batch(
        self,
        q_ints: Sequence[np.ndarray],
        key_planes: Sequence[BitPlanes],
        guards: Sequence[np.ndarray],
        alloweds: Optional[Sequence[Optional[np.ndarray]]] = None,
        protects: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> List[BSFResult]:
        """Per-request loop over :meth:`filter_heads` (the semantic ground
        truth the fused fast kernel must match bit for bit)."""
        num = len(key_planes)
        if alloweds is None:
            alloweds = [None] * num
        if protects is None:
            protects = [None] * num
        return [
            self.filter_heads(q_ints[i], key_planes[i], guards[i],
                              allowed=alloweds[i], protect=protects[i])
            for i in range(num)
        ]


class FastBackend(ReferenceBackend):
    """The round-vectorized kernels (one matmul per bit round).

    ``filter_row`` is inherited from the reference backend: ISTA's
    streaming windows carry an externally owned :class:`GuardedFilter`
    across calls, and the row kernel is already vectorized over keys
    within each round, so there is no separate fast variant to dispatch.
    """

    name = "fast"

    def filter(
        self,
        q_int: np.ndarray,
        key_planes: BitPlanes,
        guard: float,
        allowed: Optional[np.ndarray] = None,
        protect: Optional[np.ndarray] = None,
    ) -> BSFResult:
        return bsf_filter_fast(q_int, key_planes, guard, allowed=allowed, protect=protect)

    def filter_heads(
        self,
        q_int: np.ndarray,
        key_planes: BitPlanes,
        guards: np.ndarray,
        allowed: Optional[np.ndarray] = None,
        protect: Optional[np.ndarray] = None,
    ) -> BSFResult:
        return bsf_filter_fast_heads(
            q_int, key_planes, guards, allowed=allowed, protect=protect
        )

    def filter_heads_batch(
        self,
        q_ints: Sequence[np.ndarray],
        key_planes: Sequence[BitPlanes],
        guards: Sequence[np.ndarray],
        alloweds: Optional[Sequence[Optional[np.ndarray]]] = None,
        protects: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> List[BSFResult]:
        return bsf_filter_fast_batch(
            q_ints, key_planes, guards, alloweds=alloweds, protects=protects
        )


_REGISTRY: Dict[str, KernelBackend] = {}
_session_default: Optional[str] = None


def register_backend(backend: KernelBackend, overwrite: bool = False) -> KernelBackend:
    """Add a backend to the registry under ``backend.name``.

    Registering an existing name requires ``overwrite=True`` so a typo
    cannot silently shadow a shipped backend.
    """
    name = backend.name
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"backend {name!r} already registered (pass overwrite=True)")
    _REGISTRY[name] = backend
    return backend


def available_backends() -> Tuple[str, ...]:
    """Names of every registered backend, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_backend_name(name: Optional[str] = None) -> str:
    """Apply the precedence chain and return the effective backend name."""
    if name is not None:
        return name
    if _session_default is not None:
        return _session_default
    return os.environ.get(DEFAULT_BACKEND_ENV) or _FALLBACK


def get_backend(name: Optional[Union[str, KernelBackend]] = None) -> KernelBackend:
    """Look up a backend; ``None`` resolves via the precedence chain.

    Accepts an already-constructed :class:`KernelBackend` and returns it
    unchanged, so call sites can take ``str | KernelBackend | None``.
    """
    if name is not None and not isinstance(name, str):
        return name
    resolved = resolve_backend_name(name)
    try:
        return _REGISTRY[resolved]
    except KeyError:
        known = ", ".join(available_backends())
        raise KeyError(f"unknown kernel backend {resolved!r}; available: {known}") from None


def set_default_backend(name: Optional[str]) -> Optional[str]:
    """Set (or with ``None`` clear) the session-wide default backend.

    Returns the previous session default so callers can restore it.  The
    name is validated eagerly so a bad ``--backend`` fails at parse time,
    not deep inside a figure function.
    """
    global _session_default
    if name is not None and name not in _REGISTRY:
        known = ", ".join(available_backends())
        raise KeyError(f"unknown kernel backend {name!r}; available: {known}")
    previous = _session_default
    _session_default = name
    return previous


register_backend(ReferenceBackend())
register_backend(FastBackend())
