"""Table I — feature matrix of SOTA attention accelerators."""

from repro.eval import harness as H
from repro.eval.reporting import print_table


def test_table1_features(benchmark):
    data = benchmark(H.table1_features)
    cols = ["computation", "memory", "predictor_free", "tiling", "optimization_level"]
    rows = [[name] + [feats.get(c, "-") for c in cols] for name, feats in data.items()]
    print_table("Table I: accelerator features", ["design"] + cols, rows)
    assert data["pade"]["optimization_level"] == "bit"
