"""Async serving benchmark: the loopback front-end vs the in-process path.

Two measurements (ISSUE 7):

* **parity** — the same seed-deterministic workload served twice on
  fresh engines: once through :class:`repro.serve.AsyncPadeServer` over
  a loopback socket in deterministic-replay mode (every submit lands
  before round 0), once through the in-process
  :meth:`PadeEngine.serve`.  Asserts byte-identical outputs (sha256 over
  decode outputs and retained sets, plus every streamed token digest)
  and an *identical* round-clock report — the async layer adds wall
  clocks, it must not change the schedule.
* **load** — a closed-loop client drives the live server (no barrier,
  ``arrival="now"``) and the measured wall-clock columns are gated for
  sanity: every request served, zero leaked pool blocks, wall
  TTFT/TPOT/queueing series fully populated (``n_`` counts match),
  non-negative, with monotone p50 <= p95 <= p99 tails, and a positive
  sustained wall-clock token throughput.

    python benchmarks/bench_async_serve.py [--requests N] [--budget B]
    python benchmarks/bench_async_serve.py --quick --json-out BENCH_async_serve.json

``--quick`` shrinks the workload for the CI perf-smoke job (same
assertions, less wall-clock) and ``--json-out`` archives the measured
dict.  Also runnable under pytest (module-level tests use the reduced
workload).
"""

from __future__ import annotations

import argparse
import json

from repro.core import PadeConfig
from repro.engine import PadeEngine
from repro.eval.serving_metrics import summarize_serving
from repro.eval.workloads import build_serving_workload
from repro.serve.client import serve_workload_over_loopback
from repro.serve.protocol import array_digest, result_digests

WALL_SERIES = ("wall_ttft_ms", "wall_tpot_ms", "wall_queueing_ms")


def _fresh_engine():
    return PadeEngine(PadeConfig.standard(), policy="pade")


def _workload(num_requests, rate, context, steps, num_heads, head_dim, seed):
    return build_serving_workload(
        num_requests, num_heads, context, steps, head_dim, rate=rate, seed=seed
    )


def check_wall_sanity(report, expect_n=None):
    """Sanity-gate the measured wall columns; returns a list of violations."""
    problems = []
    for series in WALL_SERIES:
        n = report.get(f"n_{series}", 0.0)
        if expect_n is not None and series != "wall_tpot_ms" and n != float(expect_n):
            problems.append(f"{series}: n={n}, expected {expect_n}")
        if n == 0.0:
            continue
        stats = [report[f"{s}_{series}"] for s in ("mean", "p50", "p95", "p99")]
        if any(v < 0 for v in stats):
            problems.append(f"{series}: negative stats {stats}")
        p50, p95, p99 = stats[1:]
        if not (p50 <= p95 <= p99):
            problems.append(f"{series}: non-monotone tails {p50}, {p95}, {p99}")
    if report.get("wall_makespan_ms", -1.0) < 0:
        problems.append("negative wall makespan")
    return problems


def run_parity(
    num_requests: int = 8,
    rate: float = 0.4,
    context: int = 64,
    steps: int = 10,
    num_heads: int = 4,
    head_dim: int = 32,
    budget: int = 512,
    block_size: int = 16,
    max_active: int = 4,
    seed: int = 11,
):
    """Loopback replay vs in-process serve: bytes and round clocks equal."""
    workload = _workload(num_requests, rate, context, steps, num_heads, head_dim, seed)
    serve_kwargs = dict(
        max_active=max_active, token_budget=budget, block_size=block_size, policy="fcfs"
    )

    dones, ack, server = serve_workload_over_loopback(
        _fresh_engine(), workload, barrier=True, **serve_kwargs
    )

    engine = _fresh_engine()
    results = engine.serve(workload, **serve_kwargs)
    scheduler = engine.last_serve
    reference = summarize_serving(
        results.values(),
        occupancy=scheduler.occupancy,
        token_budget=scheduler.pool.token_budget if scheduler.pool else None,
        scheduler=scheduler,
    )

    digest_mismatches = []
    token_mismatches = []
    for rid, res in results.items():
        done = dones[rid]
        expected = result_digests(res)
        if (
            done.get("output_digest") != expected["output_digest"]
            or done.get("retained_digest") != expected["retained_digest"]
        ):
            digest_mismatches.append(rid)
        tokens = done.get("tokens", [])
        if len(tokens) != res.decode_outputs.shape[1] or any(
            tok["digest"] != array_digest(res.decode_outputs[:, tok["step"], :])
            for tok in tokens
        ):
            token_mismatches.append(rid)

    async_report = ack["report"]
    report_diffs = {
        key: (value, async_report.get(key))
        for key, value in reference.items()
        if async_report.get(key) != value
    }
    return {
        "requests": float(num_requests),
        "parity_ok": not (digest_mismatches or token_mismatches or report_diffs),
        "digest_mismatches": digest_mismatches,
        "token_mismatches": token_mismatches,
        "report_diffs": {k: list(v) for k, v in report_diffs.items()},
        "leaked_blocks": ack["leaked_blocks"],
        "wall_problems": check_wall_sanity(async_report, expect_n=len(results)),
        "round_report": {
            k: reference[k]
            for k in ("mean_ttft", "p95_ttft", "mean_tpot", "throughput_tokens_per_round")
        },
        "wall_report": {
            k: async_report[k]
            for k in async_report
            if k.startswith(("wall_", "n_wall_", "mean_wall_", "p50_wall_", "p95_wall_", "p99_wall_"))
        },
    }


def run_load(
    num_requests: int = 16,
    context: int = 48,
    steps: int = 10,
    num_heads: int = 4,
    head_dim: int = 32,
    budget: int = 1024,
    block_size: int = 16,
    max_active: int = 4,
    concurrency: int = 4,
    seed: int = 23,
):
    """Closed-loop live load over loopback: sustained wall throughput."""
    workload = _workload(num_requests, 0.5, context, steps, num_heads, head_dim, seed)
    dones, ack, server = serve_workload_over_loopback(
        _fresh_engine(),
        workload,
        barrier=False,
        concurrency=concurrency,
        max_active=max_active,
        token_budget=budget,
        block_size=block_size,
        policy="fcfs",
    )
    report = ack["report"]
    served = sum(
        1 for d in dones.values() if d.get("type") == "done" and d.get("status") == "ok"
    )
    problems = check_wall_sanity(report, expect_n=served)
    if served != num_requests:
        problems.append(f"served {served}/{num_requests}")
    if ack["leaked_blocks"] != 0:
        problems.append(f"leaked {ack['leaked_blocks']} blocks")
    if report.get("wall_tokens_per_s", 0.0) <= 0:
        problems.append("no sustained wall throughput")
    return {
        "requests": float(num_requests),
        "concurrency": float(concurrency),
        "served": float(served),
        "leaked_blocks": ack["leaked_blocks"],
        "problems": problems,
        "wall_tokens_per_s": report.get("wall_tokens_per_s", 0.0),
        "wall_makespan_ms": report.get("wall_makespan_ms", 0.0),
        "p50_wall_ttft_ms": report.get("p50_wall_ttft_ms", 0.0),
        "p95_wall_ttft_ms": report.get("p95_wall_ttft_ms", 0.0),
        "p99_wall_ttft_ms": report.get("p99_wall_ttft_ms", 0.0),
        "p95_wall_tpot_ms": report.get("p95_wall_tpot_ms", 0.0),
        "p95_wall_queueing_ms": report.get("p95_wall_queueing_ms", 0.0),
        "round_throughput_tokens_per_round": report.get("throughput_tokens_per_round", 0.0),
    }


def test_async_parity():
    """Reduced parity workload: byte-identical outputs, identical report."""
    r = run_parity(num_requests=6, context=48, steps=8, budget=512, max_active=3)
    assert r["parity_ok"], (
        f"async/in-process divergence: digests={r['digest_mismatches']} "
        f"tokens={r['token_mismatches']} report={r['report_diffs']}"
    )
    assert r["leaked_blocks"] == 0
    assert not r["wall_problems"], r["wall_problems"]


def test_async_load_gates():
    """Reduced live load: wall columns populated, sane, zero leaks."""
    r = run_load(num_requests=8, steps=8, concurrency=3)
    assert not r["problems"], r["problems"]
    assert r["wall_tokens_per_s"] > 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=8)
    parser.add_argument("--load-requests", type=int, default=16)
    parser.add_argument("--rate", type=float, default=0.4)
    parser.add_argument("--context", type=int, default=64)
    parser.add_argument("--steps", type=int, default=10)
    parser.add_argument("--heads", type=int, default=4)
    parser.add_argument("--head-dim", type=int, default=32)
    parser.add_argument("--budget", type=int, default=512)
    parser.add_argument("--block-size", type=int, default=16)
    parser.add_argument("--max-active", type=int, default=4)
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced workload for CI perf-smoke (same assertions)",
    )
    parser.add_argument(
        "--json-out", default=None,
        help="write the measured results dict to this JSON file",
    )
    args = parser.parse_args()
    if args.quick:
        args.requests, args.load_requests = 6, 8
        args.context, args.steps, args.max_active = 48, 8, 3
        args.concurrency = 3

    parity = run_parity(
        args.requests, args.rate, args.context, args.steps, args.heads,
        args.head_dim, args.budget, args.block_size, args.max_active,
    )
    print(
        f"parity ({args.requests} requests over loopback, replay mode): "
        f"ok={parity['parity_ok']}  leaked={parity['leaked_blocks']}"
    )
    for key, value in parity["round_report"].items():
        print(f"  {key:32s}: {value:8.3f}")

    load = run_load(
        args.load_requests, args.context, args.steps, args.heads, args.head_dim,
        budget=max(args.budget, 1024), block_size=args.block_size,
        max_active=args.max_active, concurrency=args.concurrency,
    )
    print(
        f"\nclosed-loop load ({args.load_requests} requests, "
        f"concurrency {args.concurrency}):"
    )
    print(f"  sustained throughput     : {load['wall_tokens_per_s']:8.1f} tokens/s (wall)")
    print(f"  wall makespan            : {load['wall_makespan_ms']:8.1f} ms")
    print(
        f"  wall TTFT p50/p95/p99    : {load['p50_wall_ttft_ms']:.2f} / "
        f"{load['p95_wall_ttft_ms']:.2f} / {load['p99_wall_ttft_ms']:.2f} ms"
    )
    print(f"  wall TPOT p95            : {load['p95_wall_tpot_ms']:8.3f} ms/token")
    print(f"  wall queueing p95        : {load['p95_wall_queueing_ms']:8.2f} ms")

    assert parity["parity_ok"], (
        f"async/in-process divergence: {parity['digest_mismatches']} "
        f"{parity['token_mismatches']} {parity['report_diffs']}"
    )
    assert not parity["wall_problems"], parity["wall_problems"]
    assert not load["problems"], load["problems"]
    print(
        "\nPASS: loopback serving is byte-identical to in-process on the round "
        "clock, with sane measured wall-clock tails"
    )
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump({"parity": parity, "load": load}, fh, indent=2)
        print(f"wrote {args.json_out}")


if __name__ == "__main__":
    main()
