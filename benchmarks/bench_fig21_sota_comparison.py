"""Fig. 21 — speedup & energy breakdown vs five SOTA accelerators."""

from repro.eval import harness as H
from repro.eval.metrics import geomean
from repro.eval.reporting import print_table


def test_fig21_sota_comparison(benchmark):
    entries = (("llama2-7b", 2048), ("llama3-8b", 2048), ("vit-l/16", 576), ("pvt", 3000))
    data = benchmark(H.fig21_sota_comparison, entries)
    for model, designs in data.items():
        rows = [
            [name, round(v["speedup"], 2), round(v["energy_vs_pade"], 2),
             round(v["dram_share"], 2), round(v["buffer_share"], 2), round(v["compute_share"], 2)]
            for name, v in designs.items()
        ]
        print_table(
            f"Fig. 21 [{model}]: speedup (slowest = 1) & energy shares",
            ["design", "speedup", "energy vs PADE", "dram", "buffer", "compute"],
            rows,
        )
    for model, designs in data.items():
        # PADE leads (or ties within ~10%) on both axes; on ViT our CV
        # profile is less sparse than the paper's measurement, letting SOFA
        # tie (see EXPERIMENTS.md).
        best = max(v["speedup"] for v in designs.values())
        assert designs["pade"]["speedup"] >= 0.90 * best
        assert all(v["energy_vs_pade"] >= 0.90 for v in designs.values())
    for model in ("llama2-7b", "llama3-8b", "pvt"):
        assert all(v["energy_vs_pade"] >= 1.0 for v in data[model].values())
    gains = {
        d: geomean([data[m][d]["energy_vs_pade"] for m in data])
        for d in ("sanger", "dota", "sofa")
    }
    print(f"geomean energy savings vs PADE: sanger {gains['sanger']:.1f}x (paper 5.1), "
          f"dota {gains['dota']:.1f}x (paper 4.3), sofa {gains['sofa']:.1f}x (paper 3.4)")
    assert gains["sanger"] > gains["sofa"] > 1.0

    # GQA observation: PADE's lead is at least as large on Llama3 (GQA).
    l2 = data["llama2-7b"]["sanger"]["energy_vs_pade"]
    l3 = data["llama3-8b"]["sanger"]["energy_vs_pade"]
    print(f"sanger/PADE energy: MHA {l2:.2f}x vs GQA {l3:.2f}x")
