"""Fig. 18 — bit-serial overhead and the H100 GPU comparison."""

from repro.eval import harness as H
from repro.eval.reporting import print_table


def test_fig18a_bit_overhead(benchmark):
    data = benchmark(H.fig18_bit_overhead, seq_len=512)
    rows = [
        [k, round(v["value_latency"]), round(v["bit_latency"]),
         round(v["latency_gain"], 2), round(v["bit_shift_share"], 3)]
        for k, v in data.items()
    ]
    print_table(
        "Fig. 18(a): value-level vs bit-level PADE",
        ["workload", "value cycles", "bit cycles", "latency gain", "shift energy share"],
        rows,
    )
    for v in data.values():
        assert v["latency_gain"] > 2.0  # paper: ~5x, 17% shift overhead


def test_fig18b_gpu_comparison(benchmark):
    data = benchmark(H.fig18_gpu_comparison, ("llama2-7b", "llama3-8b", "opt-1b3", "pvt"))
    rows = [
        [m, round(v["gpu_bui_latency"], 3), round(v["gpu_bui_fa3_latency"], 3),
         round(v["pade_std_latency"], 3), round(v["pade_aggr_latency"], 3),
         round(v["pade_std_eff"], 1), round(v["pade_aggr_eff"], 1)]
        for m, v in data.items()
    ]
    print_table(
        "Fig. 18(b): latency (GPU = 1) and efficiency gain over H100",
        ["model", "GPU+BUI", "GPU+BUI+FA3", "PADE std", "PADE aggr", "eff std", "eff aggr"],
        rows,
    )
    import numpy as np

    std_eff = np.mean([v["pade_std_eff"] for v in data.values()])
    aggr_eff = np.mean([v["pade_aggr_eff"] for v in data.values()])
    std_speed = np.mean([1 / v["pade_std_latency"] for v in data.values()])
    aggr_speed = np.mean([1 / v["pade_aggr_latency"] for v in data.values()])
    print(f"PADE std/aggr: {std_speed:.1f}x/{aggr_speed:.1f}x latency (paper 5.8/7.4), "
          f"{std_eff:.1f}x/{aggr_eff:.1f}x efficiency (paper 28.2/31.1)")
    assert aggr_speed > std_speed > 2.0
    assert aggr_eff > std_eff > 8.0
