"""Fig. 25 — BUI-GF compatibility with the MXINT micro-scaling format."""

from repro.eval import harness as H
from repro.eval.reporting import print_table


def test_fig25_mx_bui(benchmark):
    data = benchmark(H.fig25_mx_example)
    print_table(
        "Fig. 25: group-scaled BUI on MXINT operands",
        ["checked pairs x prefixes", "sound", "rate", "mean width"],
        [[data["checked"], data["sound"], data["soundness_rate"], round(data["mean_interval_width"], 2)]],
    )
    assert data["soundness_rate"] == 1.0
