"""Speculative & parallel-sampling serving benchmark on the COW-forked pool.

Acceptance workload (ISSUE 10): the two fork-based serving modes against
their plain-decode baselines, three claims:

* **speculation beats one-token-per-round** — on a draft-friendly
  (sink-dominated) workload the StreamingLLM draft proposes tokens the
  PADE verifier accepts almost verbatim, so the speculative arm emits
  >= 1.5x the tokens per scheduler round that plain PADE decode does
  (plain decode is exactly 1.0/round by construction).
* **n-best shares, it does not replicate** — at ``n = 4`` parallel
  sampling the pool amplification factor (unique live blocks over the
  single-lineage footprint) stays under ``n / 2``: the shared prompt
  prefix is physically one copy, each lineage pays only its private
  decode tail plus one COW-forked block.
* **byte-identical when disabled** — with both modes off the serve is
  byte-for-byte today's behavior on both kernel backends (identical
  output and retained-set digests, no ``spec_*`` / ``parallel_*``
  report columns).

    python benchmarks/bench_spec.py [--requests N] [--budget B]
    python benchmarks/bench_spec.py --quick --json-out BENCH_spec.json

``--quick`` shrinks the workloads for the CI perf-smoke job (same
assertions, less wall-clock) and ``--json-out`` archives the measured
dict as a build artifact.  Also runnable under pytest (the module-level
tests use the reduced workloads).
"""

from __future__ import annotations

import argparse
import json

from repro.core.backend import set_default_backend
from repro.core.config import PadeConfig
from repro.engine import PadeEngine
from repro.eval.serving_metrics import summarize_serving
from repro.eval.workloads import (
    build_parallel_workload,
    build_serving_workload,
    build_speculative_workload,
)

#: Speculative gate: accepted-tokens-per-round vs the plain-decode
#: cadence of exactly 1.0 token per round.
SPEEDUP_FLOOR = 1.5

#: Parallel-sampling lineage count and its amplification ceiling.
N_SAMPLES = 4
AMPLIFICATION_CEILING = N_SAMPLES / 2


def _serve(workload, budget, max_active, backend=None, **kw):
    if backend is not None:
        set_default_backend(backend)
    engine = PadeEngine(PadeConfig.standard())
    results = engine.serve(
        workload, max_active=max_active, token_budget=budget, block_size=16, **kw
    )
    scheduler = engine.last_serve
    report = summarize_serving(
        results.values(),
        occupancy=scheduler.occupancy,
        token_budget=scheduler.pool.token_budget if scheduler.pool else None,
        scheduler=scheduler,
    )
    return results, report, scheduler


def speculative_comparison(
    num_requests: int = 8,
    context: int = 64,
    steps: int = 16,
    budget: int = 4096,
    max_active: int = 4,
    seed: int = 11,
):
    """Draft-verify speculation vs plain PADE decode on the same tensors.

    The parity arm serves the *identical* draft-friendly tensors with
    ``speculative=False``, so the accepted-tokens-per-round ratio
    measures the round-count saving alone, not a workload change.
    """
    spec_wl = build_speculative_workload(
        num_requests, 4, context, steps, 32, rate=1.0, seed=seed
    )
    plain_wl = build_speculative_workload(
        num_requests, 4, context, steps, 32, rate=1.0, seed=seed,
        speculative=False,
    )
    _res_s, rep_spec, sched_s = _serve(spec_wl, budget, max_active)
    _res_p, rep_plain, sched_p = _serve(plain_wl, budget, max_active)
    plain_per_round = (
        sched_p.decoded_tokens / max(1, len(sched_p.round_log))
        if getattr(sched_p, "round_log", None) is not None
        else 1.0
    )
    return {
        "speculative": rep_spec,
        "plain": rep_plain,
        "accepted_tokens_per_round": rep_spec["accepted_tokens_per_round"],
        "draft_acceptance_rate": rep_spec["draft_acceptance_rate"],
        "spec_rollbacks": rep_spec["spec_rollbacks"],
        "plain_tokens_per_round": 1.0,  # one decode_step per active round
        "speedup": rep_spec["accepted_tokens_per_round"] / 1.0,
        "speedup_floor": SPEEDUP_FLOOR,
        "leak_free": sched_s.pool.used_block_count == 0
        and sched_p.pool.used_block_count == 0,
    }


def parallel_amplification(
    num_requests: int = 12,
    context: int = 64,
    steps: int = 4,
    budget: int = 8192,
    max_active: int = 8,
    seed: int = 11,
):
    """Pool amplification of n-best sampling at ``n = N_SAMPLES``."""
    workload = build_parallel_workload(
        num_requests, 4, context, steps, 32, n_samples=N_SAMPLES,
        rate=1.0, seed=seed,
    )
    results, report, sched = _serve(workload, budget, max_active)
    return {
        "parallel": report,
        "n_samples": float(N_SAMPLES),
        "pool_amplification_factor": report["pool_amplification_factor"],
        "amplification_ceiling": AMPLIFICATION_CEILING,
        "completed": report["completed_requests"],
        "sample_outputs_ok": all(
            len(r.sample_outputs) == N_SAMPLES - 1 for r in results.values()
        ),
        "leak_free": sched.pool.used_block_count == 0,
    }


def disabled_parity(
    num_requests: int = 6,
    context: int = 32,
    steps: int = 12,
    budget: int = 1024,
    max_active: int = 4,
    seed: int = 11,
):
    """Byte-parity gate: both modes off is today's behavior, both backends."""
    from repro.serve.protocol import result_digests

    workload = build_serving_workload(
        num_requests, 4, context, steps, 32, rate=0.8, seed=seed
    )
    digests = {}
    off_report = None
    for backend in ("reference", "fast"):
        results, report, _sched = _serve(
            workload, budget, max_active, backend=backend
        )
        digests[backend] = {
            rid: result_digests(results[rid]) for rid in sorted(results)
        }
        off_report = report
    set_default_backend("fast")
    leaked = [
        k for k in off_report
        if "spec" in k or "parallel" in k or "amplification" in k or "draft" in k
    ]
    return {
        "disabled_backend_parity": digests["reference"] == digests["fast"],
        "disabled_report_fork_columns": leaked,
    }


def _check(spec, par, parity):
    assert spec["draft_acceptance_rate"] > 0, "draft never accepted a token"
    assert spec["accepted_tokens_per_round"] >= SPEEDUP_FLOOR, (
        f"speculative accepted-tokens/round {spec['accepted_tokens_per_round']:.2f} "
        f"below the {SPEEDUP_FLOOR}x floor over plain decode (1.0/round)"
    )
    assert spec["leak_free"], "speculative arm leaked pool blocks"
    assert par["pool_amplification_factor"] < AMPLIFICATION_CEILING, (
        f"pool amplification {par['pool_amplification_factor']:.2f} at "
        f"n={N_SAMPLES} reached the replication ceiling {AMPLIFICATION_CEILING}"
    )
    assert par["pool_amplification_factor"] >= 1.0, (
        "amplification below 1.0 -- the accounting is broken"
    )
    assert par["sample_outputs_ok"], "missing n-best lineage outputs"
    assert par["leak_free"], "parallel arm leaked pool blocks"
    assert parity["disabled_backend_parity"], (
        "modes disabled: backends disagree on output/retained digests"
    )
    assert not parity["disabled_report_fork_columns"], (
        f"disabled run leaked fork-mode columns: "
        f"{parity['disabled_report_fork_columns']}"
    )


# ---------------------------------------------------------------------------
# pytest entry points (reduced workloads, same assertions as main)
# ---------------------------------------------------------------------------

def test_speculation_and_parallel_sampling_gates():
    spec = speculative_comparison(num_requests=4, steps=12, budget=2048)
    par = parallel_amplification(num_requests=6, budget=4096, max_active=6)
    parity = disabled_parity(num_requests=4, steps=8, budget=768)
    _check(spec, par, parity)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=8)
    parser.add_argument("--budget", type=int, default=4096)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced workloads for CI perf-smoke (same assertions)",
    )
    parser.add_argument(
        "--json-out", default=None,
        help="write the measured results dict to this JSON file",
    )
    args = parser.parse_args()
    requests, budget, steps = args.requests, args.budget, 16
    par_requests, par_budget = 12, 8192
    if args.quick:
        requests, budget, steps = 4, 2048, 12
        par_requests, par_budget = 6, 4096

    spec = speculative_comparison(num_requests=requests, steps=steps, budget=budget)
    print("draft-verify speculation vs plain PADE decode (same tensors):")
    print(
        f"  speculative: {spec['accepted_tokens_per_round']:.2f} accepted "
        f"tokens/round, acceptance rate {spec['draft_acceptance_rate']:.2f}, "
        f"rollbacks {spec['spec_rollbacks']:.0f}"
    )
    print(
        f"  plain      : {spec['plain_tokens_per_round']:.2f} tokens/round"
        f"  ->  {spec['speedup']:.2f}x (floor {SPEEDUP_FLOOR}x)"
    )

    par = parallel_amplification(num_requests=par_requests, budget=par_budget)
    print(
        f"\nn-best sampling at n={N_SAMPLES}: pool amplification "
        f"{par['pool_amplification_factor']:.2f}x "
        f"(replication would be {float(N_SAMPLES):.0f}x, "
        f"ceiling {AMPLIFICATION_CEILING:.1f}x)"
    )

    parity = disabled_parity(num_requests=max(4, requests // 2))
    print(
        "\nparity: modes disabled, backends "
        f"{'identical' if parity['disabled_backend_parity'] else 'DIFFER'}"
    )

    _check(spec, par, parity)
    print("\nall speculative/parallel gates hold")

    if args.json_out:
        payload = {
            "speculative": spec, "parallel": par, "parity": parity,
            "quick": args.quick,
        }
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2, default=str)
        print(f"wrote {args.json_out}")


if __name__ == "__main__":
    main()
