"""Table II — accuracy of Transformer models under MXINT8/FP16/INT8/PADE.

Accuracy is the proxy model of DESIGN.md §2: reference values are the
paper's constants; the PADE(S)/PADE(A) deltas are driven by the *measured*
softmax mass the real pipeline discards on the synthetic workloads.
"""

from repro.eval import harness as H
from repro.eval.reporting import print_table

SUBSET = [
    ("dolly", "llama2-7b"), ("wikilingua", "llama2-7b"), ("mbpp", "llama2-7b"),
    ("wikitext2", "llama2-7b"), ("mmlu", "llama2-7b"), ("winogrande", "llama2-7b"),
    ("wikilingua", "qwen-7b"), ("imagenet", "vit-l/16"), ("imagenet", "pvt"),
]


def test_table2_accuracy(benchmark):
    rows = benchmark(H.table2_accuracy, tasks=SUBSET)
    headers = ["model", "task", "MXINT8", "FP16", "INT8", "PADE (S)", "PADE (A)"]
    print_table(
        "Table II: accuracy (proxy model)",
        headers,
        [[r["model"], r["task"], r["MXINT8"], r["FP16"], r["INT8"], r["PADE (S)"], r["PADE (A)"]] for r in rows],
    )
    for r in rows:
        if r["metric"] == "ppl":
            assert r["PADE (A)"] >= r["PADE (S)"] >= r["INT8"]
        else:
            assert r["PADE (A)"] <= r["PADE (S)"] <= r["INT8"]


def test_table2_full_suite():
    """All 22 benchmarks, unbenchmarked sanity pass."""
    rows = H.table2_accuracy()
    assert len(rows) == 22
