"""Policy benchmark: every sparse-attention method through one serving engine.

Acceptance workload (ISSUE 4): the same Poisson-arrival serving stream is
served by ``PadeEngine(policy=...)`` for every policy in
:data:`repro.attention.policy.POLICY_REGISTRY` — PADE's bit-plane filter
plus the converted software baselines (Quest, H2O, StreamingLLM,
MInference, double sparsity, top-k oracle) — with continuous batching
over the shared paged pool, so TTFT / TPOT / throughput / occupancy and
achieved sparsity are finally apples-to-apples across methods.

Two regression gates ride along:

* **PADE routing parity** — the policy-routed engine's outputs and
  retained sets are byte-identical to a manual prefill/append/attend
  loop that bypasses the policy layer entirely (the pre-refactor code
  path), on both kernel backends;
* **incremental == one-shot** — for each converted baseline, driving the
  incremental policy step by step through the engine reproduces the
  legacy one-shot function on a fixed seed: same retained mask rows,
  allclose outputs (H2O compares its decode loop; MInference its
  prefill-block selection, which is where its one pattern choice lives).

    python benchmarks/bench_policies.py [--requests N] [--budget B]
    python benchmarks/bench_policies.py --quick --json-out BENCH_policies.json

``--quick`` shrinks the workload for the CI perf-smoke job (same
assertions, less wall-clock) and ``--json-out`` archives the measured
dict as a build artifact.  Also runnable under pytest.
"""

from __future__ import annotations

import argparse
import json

import numpy as np

from repro.attention.baselines import (
    double_sparsity_attention,
    h2o_decode,
    minference_attention,
    quest_attention,
    streaming_llm_attention,
    topk_oracle_attention,
)
from repro.attention.baselines.double_sparsity import (
    DoubleSparsityPolicy,
    select_heavy_channels,
)
from repro.attention.policy import available_policies, get_policy
from repro.core import PadeConfig
from repro.engine import PadeEngine
from repro.eval.serving_metrics import summarize_serving
from repro.eval.workloads import build_serving_workload


# ---------------------------------------------------------------------------
# Serving sweep: one workload, every policy
# ---------------------------------------------------------------------------

def policy_sweep(
    num_requests: int = 8,
    rate: float = 0.35,
    context: int = 72,
    steps: int = 12,
    num_heads: int = 4,
    head_dim: int = 32,
    budget: int = 512,
    block_size: int = 16,
    max_active: int = 3,
    seed: int = 7,
):
    """Serve the same workload under every registered policy; tabulate."""
    rows = {}
    for name in available_policies():
        workload = build_serving_workload(
            num_requests, num_heads, context, steps, head_dim, rate=rate, seed=seed
        )
        engine = PadeEngine(PadeConfig.standard(), policy=name)
        results = engine.serve(
            workload,
            max_active=max_active,
            token_budget=budget,
            block_size=block_size,
        )
        scheduler = engine.last_serve
        report = summarize_serving(
            results.values(),
            occupancy=scheduler.occupancy,
            token_budget=budget,
            scheduler=scheduler,
        )
        rows[name] = {
            "mean_ttft": report["mean_ttft"],
            "p95_ttft": report["p95_ttft"],
            "mean_tpot": report["mean_tpot"],
            "throughput_tokens_per_round": report["throughput_tokens_per_round"],
            "mean_pool_occupancy": report.get("mean_pool_occupancy", 0.0),
            "peak_active_requests": report.get("peak_active_requests", 0.0),
            "preemptions": report["preemptions"],
            "policy_sparsity": report["policy_sparsity"],
            "policy_prediction_cost": report["policy_prediction_cost"],
            "policy_execution_cost": report["policy_execution_cost"],
            "policy_sparsity_level": report["policy_sparsity_level"],
        }
    return rows


# ---------------------------------------------------------------------------
# Gate (a): PADE policy routing is byte-identical to the direct kernel path
# ---------------------------------------------------------------------------

def _reference_pade(workload, backend):
    """Pre-refactor code path: dense caches + direct attend, no policy."""
    engine = PadeEngine(PadeConfig.standard(), backend=backend)
    out = {}
    for req in workload:
        num_heads, _, head_dim = np.asarray(req.k).shape
        cache = engine.new_cache(num_heads, head_dim, np.asarray(req.v).shape[2])
        cache.prefill(req.k, req.v)
        prefill = engine.attend(cache, req.q_prompt) if req.q_prompt is not None else None
        retained, outputs = [], []
        for t in range(req.decode_steps):
            cache.append(req.decode_k[:, t, :], req.decode_v[:, t, :])
            res = engine.attend(cache, np.asarray(req.decode_q[:, t, :])[:, None, :])
            retained.append(res.retained[:, 0, :])
            outputs.append(res.output[:, 0, :])
        out[req.request_id] = (
            b"".join(np.packbits(r.astype(np.uint8)).tobytes() for r in retained),
            np.stack(outputs, axis=1) if outputs else None,
            prefill.output if prefill is not None else None,
        )
    return out


def pade_routing_parity(
    num_requests: int = 6,
    context: int = 48,
    steps: int = 8,
    num_heads: int = 4,
    head_dim: int = 32,
    budget: int = 512,
    block_size: int = 16,
    max_active: int = 3,
    seed: int = 7,
) -> bool:
    """Policy-routed serve() == manual attend loop, both kernel backends."""
    for backend in ("fast", "reference"):
        workload = build_serving_workload(
            num_requests, num_heads, context, steps, head_dim, rate=0.35, seed=seed
        )
        engine = PadeEngine(PadeConfig.standard(), backend=backend, policy="pade")
        served = engine.serve(
            workload, max_active=max_active, token_budget=budget, block_size=block_size
        )
        reference = _reference_pade(workload, backend)
        for rid, (ret_bytes, outputs, prefill) in reference.items():
            res = served[rid]
            if res.retained_bytes() != ret_bytes:
                return False
            if outputs is not None and res.decode_outputs.tobytes() != outputs.tobytes():
                return False
            if prefill is not None and res.prefill_output.tobytes() != prefill.tobytes():
                return False
    return True


# ---------------------------------------------------------------------------
# Gate (b): each incremental baseline == its legacy one-shot function
# ---------------------------------------------------------------------------

def _decode_incremental(policy, k, v, q, prompt_len):
    """Single-head engine decode of ``q`` rows over a prompt + step stream."""
    steps, head_dim = q.shape
    engine = PadeEngine(PadeConfig.standard(), policy=policy)
    cache = engine.new_cache(1, head_dim, v.shape[1])
    engine.prefill(cache, k[None, :prompt_len], v[None, :prompt_len],
                   total_tokens=k.shape[0])
    masks, outputs = [], []
    for t in range(steps):
        res = engine.decode_step(
            cache, q[None, t], k[None, prompt_len + t], v[None, prompt_len + t]
        )
        masks.append(res.retained[0, 0])
        outputs.append(res.output[0, 0])
    return masks, outputs


def _rows_match(masks, outputs, legacy, prompt_len):
    for t, (mask, out) in enumerate(zip(masks, outputs)):
        visible = prompt_len + t + 1
        if not np.array_equal(mask, legacy.retained[t, :visible]):
            return False
        if legacy.retained[t, visible:].any():
            return False
        if not np.allclose(out, legacy.output[t]):
            return False
    return True


def baseline_parity(seed: int = 42, prompt_len: int = 37, steps: int = 9,
                    head_dim: int = 16) -> dict:
    """Incremental-vs-one-shot parity verdict per converted baseline."""
    rng = np.random.default_rng(seed)
    total = prompt_len + steps
    k = rng.normal(size=(total, head_dim))
    v = rng.normal(size=(total, head_dim))
    q = rng.normal(size=(steps, head_dim))
    verdicts = {}

    masks, outs = _decode_incremental(
        get_policy("streaming-llm", keep_fraction=0.3), k, v, q, prompt_len
    )
    verdicts["streaming-llm"] = _rows_match(
        masks, outs, streaming_llm_attention(q, k, v, 0.3), prompt_len
    )

    masks, outs = _decode_incremental(
        get_policy("topk-oracle", keep_fraction=0.3), k, v, q, prompt_len
    )
    verdicts["topk-oracle"] = _rows_match(
        masks, outs, topk_oracle_attention(q, k, v, 0.3), prompt_len
    )

    masks, outs = _decode_incremental(
        get_policy("quest", keep_fraction=0.3, page_size=8), k, v, q, prompt_len
    )
    verdicts["quest"] = _rows_match(
        masks, outs, quest_attention(q, k, v, 0.3, page_size=8), prompt_len
    )

    channels = select_heavy_channels(k, 0.25)
    masks, outs = _decode_incremental(
        DoubleSparsityPolicy(0.3, 0.25, channels=channels), k, v, q, prompt_len
    )
    verdicts["double-sparsity"] = _rows_match(
        masks, outs,
        double_sparsity_attention(q, k, v, 0.3, channel_fraction=0.25, channels=channels),
        prompt_len,
    )

    legacy_out, _, _ = h2o_decode(q, k, v, budget_fraction=0.4, recent_tokens=4)
    _, outs = _decode_incremental(
        get_policy("h2o", budget_fraction=0.4, recent_tokens=4), k, v, q, prompt_len
    )
    verdicts["h2o"] = all(np.allclose(outs[t], legacy_out[t]) for t in range(steps))

    policy = get_policy("minference", keep_fraction=0.3)
    legacy = minference_attention(q, k, v, 0.3)
    verdicts["minference"] = bool(
        np.array_equal(policy.one_shot_mask(q, k), legacy.retained)
    )
    return verdicts


# ---------------------------------------------------------------------------
# pytest entry points (reduced workloads, same assertions)
# ---------------------------------------------------------------------------

def test_pade_policy_routing_byte_identical():
    assert pade_routing_parity(num_requests=4, context=32, steps=6, budget=384)


def test_incremental_baselines_match_one_shot():
    verdicts = baseline_parity()
    assert all(verdicts.values()), f"parity failed: {verdicts}"


def test_bounded_policies_admit_more_requests():
    """H2O's charged footprint packs more concurrency than dense PADE."""
    def serve_peak(policy):
        workload = build_serving_workload(6, 2, 32, 8, 16, rate=2.0, seed=4)
        engine = PadeEngine(PadeConfig.standard(), policy=policy)
        engine.serve(workload, max_active=6, token_budget=128, block_size=8)
        return max(active for _, _, active in engine.last_serve.occupancy)

    assert serve_peak("h2o") > serve_peak("pade")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=8)
    parser.add_argument("--rate", type=float, default=0.35)
    parser.add_argument("--context", type=int, default=72)
    parser.add_argument("--steps", type=int, default=12)
    parser.add_argument("--heads", type=int, default=4)
    parser.add_argument("--head-dim", type=int, default=32)
    parser.add_argument("--budget", type=int, default=512)
    parser.add_argument("--block-size", type=int, default=16)
    parser.add_argument("--max-active", type=int, default=3)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced workload for CI perf-smoke (same assertions)",
    )
    parser.add_argument(
        "--json-out", default=None,
        help="write the measured results dict to this JSON file",
    )
    args = parser.parse_args()
    if args.quick:
        args.requests, args.context, args.steps = 6, 48, 8
        args.budget, args.max_active = 384, 2

    print(
        f"policy sweep: {args.requests} requests, Poisson rate {args.rate}/round, "
        f"{args.context}-token prompts, {args.steps} decode steps, "
        f"budget {args.budget} tokens / blocks of {args.block_size}"
    )
    rows = policy_sweep(
        args.requests, args.rate, args.context, args.steps, args.heads,
        args.head_dim, args.budget, args.block_size, args.max_active,
    )
    header = (
        f"  {'policy':16s} {'TTFT':>6s} {'p95':>6s} {'TPOT':>5s} {'tok/rd':>6s} "
        f"{'occ':>5s} {'peak':>4s} {'spars':>6s} {'pred':>5s} {'level':>6s}"
    )
    print(header)
    for name, r in sorted(rows.items()):
        print(
            f"  {name:16s} {r['mean_ttft']:6.2f} {r['p95_ttft']:6.2f} "
            f"{r['mean_tpot']:5.2f} {r['throughput_tokens_per_round']:6.2f} "
            f"{r['mean_pool_occupancy']:5.0%} {r['peak_active_requests']:4.0f} "
            f"{r['policy_sparsity']:6.3f} {r['policy_prediction_cost']:5.2f} "
            f"{r['policy_sparsity_level']:6.3f}"
        )

    routing_ok = pade_routing_parity(
        args.requests, args.context, args.steps, args.heads, args.head_dim,
        args.budget, args.block_size, args.max_active,
    )
    print(f"  PADE routing byte-identical (both backends): {routing_ok}")
    verdicts = baseline_parity()
    print(f"  incremental == one-shot: {verdicts}")

    assert routing_ok, "policy routing changed the PADE engine's bytes"
    assert all(verdicts.values()), f"incremental/one-shot parity failed: {verdicts}"
    print("\nPASS: every policy served; PADE bytes pinned; baselines match one-shot")
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(
                {"sweep": rows, "pade_routing_parity": routing_ok,
                 "baseline_parity": verdicts},
                fh, indent=2,
            )
        print(f"wrote {args.json_out}")


if __name__ == "__main__":
    main()
