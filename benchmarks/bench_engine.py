"""Serving-engine benchmark: cached-plane decode vs per-call kernels.

Acceptance workload (ISSUE 1): an 8-head decode sweep over a 2048-token
context.  Two implementations of the same decode loop are timed:

* **per-call** — what a caller had before the engine existed: every step,
  every head, one :func:`repro.core.pade_attention.pade_attention`
  invocation that re-quantizes K, re-decomposes all bit planes, and runs
  the single-head row pipeline;
* **engine** — :class:`repro.engine.PadeEngine` with its persistent
  bit-plane cache (prompt decomposed once, one incremental row per step)
  and the head-batched fast path (one einsum per round covers all heads).

The script asserts (a) the engine is >= 3x faster, and (b) the engine's
retained-token sets are byte-identical between the ``"reference"`` and
``"fast"`` backends.

    python benchmarks/bench_engine.py [--steps N] [--context S] [--heads H]
    python benchmarks/bench_engine.py --quick --json-out BENCH_engine.json

``--quick`` shrinks the sweep for the CI perf-smoke job (same assertions,
less wall-clock) and ``--json-out`` writes the measured dict to disk so
the run can be archived as a build artifact.  Also runnable under pytest
(the module-level test uses the same reduced sweep).
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.core import PadeConfig, pade_attention
from repro.engine import PadeEngine
from repro.eval.workloads import build_engine_request


def run_sweep(num_heads: int, context: int, steps: int, head_dim: int = 64):
    """Time the per-call loop and the engine on the same decode workload."""
    cfg = PadeConfig.standard()
    request = build_engine_request(
        "bench", num_heads, context, steps, head_dim=head_dim, seed=42
    )

    # --- per-call baseline: rebuild everything every (step, head) ---------
    k_cache = [request.k[h] for h in range(num_heads)]
    v_cache = [request.v[h] for h in range(num_heads)]
    t0 = time.perf_counter()
    for t in range(steps):
        for h in range(num_heads):
            k_cache[h] = np.concatenate([k_cache[h], request.decode_k[h, t : t + 1]])
            v_cache[h] = np.concatenate([v_cache[h], request.decode_v[h, t : t + 1]])
            pade_attention(
                request.decode_q[h, t], k_cache[h], v_cache[h], cfg,
                query_offset=k_cache[h].shape[0] - 1,
            )
    percall_s = time.perf_counter() - t0

    # --- engine: resident plane cache + head-batched rounds ---------------
    timings = {}
    results = {}
    for backend in ("fast", "reference"):
        engine = PadeEngine(cfg, backend=backend)
        engine.submit(
            build_engine_request("bench", num_heads, context, steps, head_dim=head_dim, seed=42)
        )
        t0 = time.perf_counter()
        results[backend] = engine.run()["bench"]
        timings[backend] = time.perf_counter() - t0

    ref = results["reference"].retained_bytes()
    fast = results["fast"].retained_bytes()
    return {
        "percall_s": percall_s,
        "engine_fast_s": timings["fast"],
        "engine_reference_s": timings["reference"],
        "speedup_fast": percall_s / timings["fast"],
        "speedup_reference": percall_s / timings["reference"],
        "retained_identical": ref == fast,
        "retained_digest_bytes": len(fast),
        "final_length": results["fast"].final_length,
    }


def test_engine_beats_percall():
    """Reduced sweep for the benchmark suite: same assertions, less time."""
    r = run_sweep(num_heads=8, context=512, steps=8)
    assert r["retained_identical"], "reference/fast engine retained sets diverged"
    assert r["speedup_fast"] >= 3.0, f"engine speedup {r['speedup_fast']:.1f}x < 3x"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--heads", type=int, default=8)
    parser.add_argument("--context", type=int, default=2048)
    parser.add_argument("--steps", type=int, default=64)
    parser.add_argument("--head-dim", type=int, default=64)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sweep for CI perf-smoke (same assertions)",
    )
    parser.add_argument(
        "--json-out", default=None,
        help="write the measured results dict to this JSON file",
    )
    args = parser.parse_args()
    if args.quick:
        args.context, args.steps = min(args.context, 512), min(args.steps, 8)

    print(f"decode sweep: {args.heads} heads, {args.context}-token context, "
          f"{args.steps} steps, head dim {args.head_dim}")
    r = run_sweep(args.heads, args.context, args.steps, args.head_dim)
    print(f"  per-call pade_attention : {r['percall_s']:8.2f} s")
    print(f"  engine (fast backend)   : {r['engine_fast_s']:8.2f} s "
          f"({r['speedup_fast']:.1f}x)")
    print(f"  engine (reference)      : {r['engine_reference_s']:8.2f} s "
          f"({r['speedup_reference']:.1f}x)")
    print(f"  retained sets identical : {r['retained_identical']} "
          f"({r['retained_digest_bytes']} packed bytes compared)")
    assert r["retained_identical"], "reference/fast engine retained sets diverged"
    assert r["speedup_fast"] >= 3.0, f"engine speedup {r['speedup_fast']:.1f}x < 3x"
    print("  PASS: engine >= 3x faster with backend-invariant retention")
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(r, fh, indent=2)
        print(f"  wrote {args.json_out}")


if __name__ == "__main__":
    main()
