"""Fig. 14 — normalized computation & memory access across models."""

from repro.eval import harness as H
from repro.eval.metrics import geomean
from repro.eval.reporting import print_table

DESIGNS = ["spatten", "sanger", "dota", "energon", "spatten*", "sofa", "pade"]


def test_fig14_computation_and_memory(benchmark):
    data = benchmark(H.fig14_comp_mem)
    for metric, base in (("computation", "spatten"), ("memory", "sanger")):
        rows = []
        for model, vals in data[metric].items():
            rows.append([model] + [round(vals[d], 3) for d in DESIGNS])
        gm = [geomean([data[metric][m][d] for m in data[metric]]) for d in DESIGNS]
        rows.append(["geomean"] + [round(v, 3) for v in gm])
        print_table(f"Fig. 14 normalized {metric} ({base} = 1)", ["model"] + DESIGNS, rows)
    # PADE achieves the largest reduction on both axes for every model.
    for metric in ("computation", "memory"):
        for model, vals in data[metric].items():
            assert vals["pade"] == min(vals.values()), (metric, model)
