"""Fig. 2 — predictor vs executor power, and the ratio's growth with SL."""

from repro.eval import harness as H
from repro.eval.reporting import print_series, print_table


def test_fig2a_power_breakdown(benchmark):
    data = benchmark(H.fig2_power_breakdown)
    rows = [
        [name, round(v["executor"], 3), round(v["predictor"], 3),
         round(v["predictor"] / max(1e-12, v["predictor"] + v["executor"]), 3)]
        for name, v in data.items()
    ]
    print_table(
        "Fig. 2(a): normalized power (dense = 1)",
        ["design@bits", "executor", "predictor", "predictor share"],
        rows,
    )
    s8 = data["sanger@8b"]
    s16 = data["sanger@16b"]
    share8 = s8["predictor"] / (s8["predictor"] + s8["executor"])
    share16 = s16["predictor"] / (s16["predictor"] + s16["executor"])
    assert share8 > share16  # predictor dominance grows at low bits


def test_fig2b_ratio_vs_seqlen(benchmark):
    seq_lens = (1024, 2048, 4096, 8192)
    data = benchmark(H.fig2_ratio_vs_seqlen, seq_lens)
    print_series("Fig. 2(b): predictor/executor power ratio vs SL", list(seq_lens), data)
    for series in data.values():
        assert series[0] < series[-1]
