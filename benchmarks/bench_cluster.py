"""Cluster benchmark: sharded multi-replica serving vs a single replica.

Three measurements (ISSUE 8):

* **scaling** — the same shared-prefix workload served in deterministic
  replay mode on 1 replica and on N replicas behind the prefix-affinity
  router, with identical per-replica budgets.  Replicas are independent
  concurrent engines, so the cluster makespan is the *max* per-replica
  round count and aggregate throughput is total tokens over that clock.
  Gate: N-replica aggregate throughput >= 2.5x the single replica.
* **affinity** — prefix-hit-rate under affinity routing vs the honest
  single-replica baseline (one replica scaled *up* to the cluster's
  aggregate ``max_active`` and token budget — a tight single replica
  thrashes interleaved families and hits 0%) and vs ``random`` routing
  (which scatters each family across replicas).  Gates: affinity hit
  rate within 0.10 of the scale-up baseline, and strictly above random.
* **failure** — live mode, N replicas; the busiest replica is hard-killed
  mid-load.  Gates: every request is settled (``ok`` or a synthesized
  ``abort_reason="replica_lost"`` done), at least one request is
  re-routed or aborted, exactly one replica reported lost, and the
  surviving pools leak zero blocks at drain.

    python benchmarks/bench_cluster.py [--replicas N] [--per-group G]
    python benchmarks/bench_cluster.py --quick --json-out BENCH_cluster.json

``--quick`` shrinks the workload for the CI perf-smoke job (same
assertions, less wall-clock) and ``--json-out`` archives the measured
dict.  Also runnable under pytest (module-level tests use a reduced
2-replica workload).
"""

from __future__ import annotations

import argparse
import asyncio
import json

from repro.cluster.server import ClusterServer, serve_workload_over_cluster
from repro.eval.workloads import build_cluster_workload
from repro.serve.client import ServeConnection

WORKER_KWARGS = dict(token_budget=1536, max_active=4, block_size=16)


def _workload(groups, per_group, steps, rate, seed):
    return build_cluster_workload(
        groups, per_group, 4, 32, 16, steps, 32, rate=rate, seed=seed
    )


def _replay(workload, replicas, routing, seed, **worker_kwargs):
    """One deterministic-replay cluster run; returns (report, problems)."""
    kwargs = {**WORKER_KWARGS, **worker_kwargs}
    dones, ack, _ = serve_workload_over_cluster(
        workload, replicas=replicas, routing=routing, barrier=True, seed=seed, **kwargs
    )
    problems = []
    not_ok = [
        rid
        for rid, d in dones.items()
        if d.get("type") != "done" or d.get("status") != "ok"
    ]
    if len(dones) != len(workload):
        problems.append(f"{len(dones)}/{len(workload)} dones")
    if not_ok:
        problems.append(f"not served ok: {sorted(not_ok)[:4]}")
    if ack.get("leaked_blocks", -1) != 0:
        problems.append(f"leaked {ack.get('leaked_blocks')} blocks")
    return ack.get("report", {}), problems


def run_scaling(
    groups: int = 4,
    per_group: int = 12,
    steps: int = 10,
    rate: float = 3.0,
    replicas: int = 4,
    seed: int = 11,
    min_speedup: float = 2.5,
):
    """1 vs N replicas, identical per-replica budgets, replay mode."""
    workload = _workload(groups, per_group, steps, rate, seed)
    single, p1 = _replay(workload, 1, "prefix", seed)
    multi, pn = _replay(workload, replicas, "prefix", seed)
    thr_1 = single.get("cluster_throughput_tokens_per_round", 0.0)
    thr_n = multi.get("cluster_throughput_tokens_per_round", 0.0)
    ratio = thr_n / thr_1 if thr_1 > 0 else 0.0
    problems = [f"1x: {p}" for p in p1] + [f"{replicas}x: {p}" for p in pn]
    if ratio < min_speedup:
        problems.append(f"throughput ratio {ratio:.2f} < {min_speedup}")
    return {
        "requests": float(groups * per_group),
        "replicas": float(replicas),
        "throughput_1x": thr_1,
        "throughput_nx": thr_n,
        "throughput_ratio": ratio,
        "makespan_1x": single.get("cluster_makespan_rounds", 0.0),
        "makespan_nx": multi.get("cluster_makespan_rounds", 0.0),
        "jain_replica_index": multi.get("jain_replica_index", 0.0),
        "problems": problems,
    }


def run_affinity(
    groups: int = 4,
    per_group: int = 12,
    steps: int = 10,
    rate: float = 3.0,
    replicas: int = 4,
    seed: int = 11,
    max_hit_drop: float = 0.10,
):
    """Prefix-hit-rate: affinity vs scale-up single replica vs random."""
    workload = _workload(groups, per_group, steps, rate, seed)
    # The honest baseline: one replica with the cluster's aggregate
    # capacity, so interleaved families are not evicted between
    # same-family admissions by a tight max_active.
    scaleup, p0 = _replay(
        workload, 1, "prefix", seed,
        token_budget=WORKER_KWARGS["token_budget"] * replicas,
        max_active=WORKER_KWARGS["max_active"] * replicas,
    )
    affinity, p1 = _replay(workload, replicas, "prefix", seed)
    rand, p2 = _replay(workload, replicas, "random", seed)
    hit_scaleup = scaleup.get("prefix_hit_rate", 0.0)
    hit_affinity = affinity.get("prefix_hit_rate", 0.0)
    hit_random = rand.get("prefix_hit_rate", 0.0)
    problems = (
        [f"scale-up: {p}" for p in p0]
        + [f"affinity: {p}" for p in p1]
        + [f"random: {p}" for p in p2]
    )
    if hit_affinity < hit_scaleup - max_hit_drop:
        problems.append(
            f"affinity hit {hit_affinity:.3f} more than {max_hit_drop} below "
            f"scale-up single replica {hit_scaleup:.3f}"
        )
    if hit_affinity <= hit_random:
        problems.append(
            f"affinity hit {hit_affinity:.3f} <= random routing {hit_random:.3f}"
        )
    return {
        "requests": float(groups * per_group),
        "replicas": float(replicas),
        "hit_scaleup_1x": hit_scaleup,
        "hit_affinity": hit_affinity,
        "hit_random": hit_random,
        "throughput_affinity": affinity.get("cluster_throughput_tokens_per_round", 0.0),
        "throughput_random": rand.get("cluster_throughput_tokens_per_round", 0.0),
        "problems": problems,
    }


async def _failure_flow(workload, replicas, kill_after, seed, worker_kwargs):
    cluster = ClusterServer(
        replicas=replicas,
        routing="prefix",
        queue_limit=max(len(workload), 1),
        seed=seed,
        **worker_kwargs,
    )
    await cluster.start()
    try:
        conn = await ServeConnection.open(cluster.host, cluster.port)
        try:
            accepted = []
            for request in workload:
                reply = await conn.submit(request, arrival="now")
                if reply["type"] == "accepted":
                    accepted.append(request.request_id)
            dones = {}
            victim = None
            pending = {
                asyncio.ensure_future(conn.result(rid)): rid for rid in accepted
            }
            while pending:
                finished, _ = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                for fut in finished:
                    dones[pending.pop(fut)] = fut.result()
                if victim is None and len(dones) >= kill_after:
                    live = [h for h in cluster.replicas.values() if h.alive]
                    handle = max(live, key=lambda h: h.in_flight)
                    victim = handle.replica_id
                    await cluster.kill_replica(victim)
            ack = await conn.shutdown()
        finally:
            await conn.close()
    finally:
        await cluster.stop()
    return dones, ack, victim


def run_failure(
    groups: int = 3,
    per_group: int = 6,
    steps: int = 8,
    replicas: int = 3,
    kill_after: int = 3,
    seed: int = 5,
):
    """Kill the busiest replica mid-load; every request must settle."""
    workload = _workload(groups, per_group, steps, 0.5, seed)
    dones, ack, victim = asyncio.run(
        _failure_flow(workload, replicas, kill_after, seed, dict(WORKER_KWARGS))
    )
    ok = sum(
        1 for d in dones.values() if d.get("type") == "done" and d.get("status") == "ok"
    )
    lost = sum(1 for d in dones.values() if d.get("abort_reason") == "replica_lost")
    rerouted = int(ack.get("rerouted_requests", 0))
    problems = []
    if len(dones) != len(workload):
        problems.append(f"{len(dones)}/{len(workload)} requests settled")
    if ok + lost != len(dones):
        problems.append(f"unaccounted statuses: ok={ok} replica_lost={lost}")
    if ack.get("leaked_blocks", -1) != 0:
        problems.append(f"survivors leaked {ack.get('leaked_blocks')} blocks")
    if len(ack.get("lost_replicas", [])) != 1:
        problems.append(f"lost_replicas = {ack.get('lost_replicas')}")
    if rerouted + lost < 1:
        problems.append("victim had no in-flight work: nothing rerouted or aborted")
    return {
        "requests": float(len(workload)),
        "replicas": float(replicas),
        "victim": victim,
        "ok": float(ok),
        "replica_lost_aborts": float(lost),
        "rerouted_requests": float(rerouted),
        "leaked_blocks": float(ack.get("leaked_blocks", -1)),
        "problems": problems,
    }


def test_cluster_scaling():
    """Reduced 2-replica scaling run: clean serves, >= 1.3x aggregate."""
    r = run_scaling(groups=2, per_group=6, steps=8, replicas=2, min_speedup=1.3)
    assert not r["problems"], r["problems"]


def test_cluster_affinity():
    """Reduced affinity comparison: hit rate survives sharding."""
    r = run_affinity(groups=2, per_group=6, steps=8, replicas=2)
    assert not r["problems"], r["problems"]


def test_cluster_failure():
    """Reduced kill scenario: all settled, zero survivor leaks."""
    r = run_failure(groups=2, per_group=4, steps=6, replicas=2, kill_after=2)
    assert not r["problems"], r["problems"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--groups", type=int, default=4)
    parser.add_argument("--per-group", type=int, default=16)
    parser.add_argument("--steps", type=int, default=10)
    parser.add_argument("--rate", type=float, default=3.0)
    parser.add_argument("--replicas", type=int, default=4)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced workload for CI perf-smoke (same assertions)",
    )
    parser.add_argument(
        "--json-out", default=None,
        help="write the measured results dict to this JSON file",
    )
    args = parser.parse_args()
    if args.quick:
        args.per_group = 12

    scaling = run_scaling(
        args.groups, args.per_group, args.steps, args.rate, args.replicas, args.seed
    )
    print(
        f"scaling ({args.groups}x{args.per_group} shared-prefix requests, "
        f"replay mode):"
    )
    print(f"  1 replica throughput     : {scaling['throughput_1x']:8.3f} tokens/round")
    print(
        f"  {args.replicas} replica throughput     : "
        f"{scaling['throughput_nx']:8.3f} tokens/round"
    )
    print(f"  aggregate speedup        : {scaling['throughput_ratio']:8.2f}x")
    print(f"  jain over replica tokens : {scaling['jain_replica_index']:8.3f}")

    affinity = run_affinity(
        args.groups, args.per_group, args.steps, args.rate, args.replicas, args.seed
    )
    print("\nprefix-hit-rate under sharding:")
    print(f"  scale-up single replica  : {affinity['hit_scaleup_1x']:8.3f}")
    print(f"  {args.replicas} replicas, affinity    : {affinity['hit_affinity']:8.3f}")
    print(f"  {args.replicas} replicas, random      : {affinity['hit_random']:8.3f}")

    failure = run_failure(replicas=min(3, args.replicas), seed=args.seed)
    print(f"\nreplica failure (killed {failure['victim']} mid-load):")
    print(f"  settled ok / replica_lost: {failure['ok']:.0f} / "
          f"{failure['replica_lost_aborts']:.0f}")
    print(f"  rerouted requests        : {failure['rerouted_requests']:.0f}")
    print(f"  survivor leaked blocks   : {failure['leaked_blocks']:.0f}")

    assert not scaling["problems"], scaling["problems"]
    assert not affinity["problems"], affinity["problems"]
    assert not failure["problems"], failure["problems"]
    print(
        f"\nPASS: {args.replicas}-replica sharding scales "
        f"{scaling['throughput_ratio']:.2f}x on the round clock and affinity "
        "routing preserves the single-replica prefix hit rate"
    )
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(
                {"scaling": scaling, "affinity": affinity, "failure": failure},
                fh,
                indent=2,
            )
        print(f"wrote {args.json_out}")


if __name__ == "__main__":
    main()
