"""Fig. 26 — diverse quantizations and ultra-long-sequence decoding."""

from repro.eval import harness as H
from repro.eval.reporting import print_table


def test_fig26a_quantization_variants(benchmark):
    data = benchmark(H.fig26_quantization, seq_len=2048)
    rows = [[k, v["dense"], round(v["sofa"], 3), round(v["pade"], 3)] for k, v in data.items()]
    print_table("Fig. 26(a): energy vs dense under quantization variants",
                ["config", "dense", "sofa", "pade"], rows)
    # QAT's flat distributions blunt SOFA's predictor far more than PADE.
    assert data["qat8"]["sofa"] / data["ptq8"]["sofa"] > data["qat8"]["pade"] / data["ptq8"]["pade"]
    assert data["ptq4"]["pade"] < data["ptq4"]["sofa"]


def test_fig26b_long_decoding(benchmark):
    seqs = (4096, 8192, 16384)
    data = benchmark(H.fig26_decoding, seq_lens=seqs)
    rows = []
    for s in seqs:
        for design in ("dense", "sofa", "pade"):
            v = data[s][design]
            rows.append([s, design, round(v["total_vs_dense"], 3), round(v["dram_share"], 2)])
    print_table("Fig. 26(b): decoding energy (dense = 1) and DRAM share",
                ["seq", "design", "energy", "dram share"], rows)
    # SOFA's predictor balloons with context; PADE stays ~flat; DRAM >85%.
    assert data[16384]["sofa"]["total_vs_dense"] > 1.3 * data[4096]["sofa"]["total_vs_dense"]
    assert abs(data[16384]["pade"]["total_vs_dense"] - data[4096]["pade"]["total_vs_dense"]) < 0.1
    for s in seqs:
        assert data[s]["dense"]["dram_share"] > 0.85
