"""Ablation: selection granularity — why bit-level bounds beat pages/eviction.

Compares, at matched keep fractions, the softmax mass retained by four
selection mechanisms on the same decode workload:

* exact token top-k (oracle upper bound),
* PADE's BUI-guarded bit-serial filter,
* Quest-style sound page bounds (coarse granularity),
* H2O-style accumulated-score eviction (irreversible decisions).

PADE's bound-driven selection tracks the oracle; page granularity and
eviction each give up mass for their hardware simplicity.
"""

import numpy as np

from repro.attention.baselines import topk_oracle_attention
from repro.attention.baselines.h2o import h2o_decode
from repro.attention.baselines.quest import quest_attention
from repro.attention.dense import attention_scores, softmax
from repro.attention.masks import causal_mask
from repro.core.config import PadeConfig
from repro.core.pade_attention import pade_attention
from repro.eval.reporting import print_table
from repro.model.synthetic import PROFILE_PRESETS, synthesize_qkv


def test_selection_granularity(benchmark):
    rng = np.random.default_rng(51)
    q, k, v = synthesize_qkv(16, 512, 64, PROFILE_PRESETS["nlp"], rng)
    causal = causal_mask(16, 512, 496)
    probs = softmax(np.where(causal, attention_scores(q, k), -np.inf), axis=-1)

    def lost(mask):
        return float(np.where(mask, 0.0, probs).sum(axis=-1).mean())

    def run():
        pade = pade_attention(q, k, v, PadeConfig(alpha=0.6, causal=True), query_offset=496)
        keep = 1.0 - pade.sparsity
        # PADE's lost mass on its own quantized logits
        logits_q = (pade.q_int.data @ pade.k_int.data.T) * pade.logit_scale
        probs_q = softmax(np.where(causal, logits_q, -np.inf), axis=-1)
        pade_lost = float(np.where(pade.retained, 0.0, probs_q).sum(axis=-1).mean())

        oracle = topk_oracle_attention(q, k, v, keep)
        quest = quest_attention(q, k, v, keep, page_size=32)
        _, h2o_lost, _ = h2o_decode(q, k, v, budget_fraction=keep)
        return {
            "keep": keep,
            "oracle": lost(oracle.retained),
            "pade": pade_lost,
            "quest": lost(quest.retained),
            "h2o": float(np.mean(h2o_lost)),
        }

    data = benchmark(run)
    rows = [[name, round(val, 4)] for name, val in data.items() if name != "keep"]
    print_table(
        f"lost softmax mass at keep={data['keep']:.3f}",
        ["selection mechanism", "lost mass"],
        rows,
    )
    assert data["oracle"] <= data["pade"] + 1e-6  # nothing beats the oracle
    assert data["pade"] < data["quest"]  # bit-level bounds beat page bounds
    assert data["pade"] < data["h2o"]  # and beat irreversible eviction
