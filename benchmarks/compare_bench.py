"""Bench-regression gate: diff fresh ``--quick --json-out`` results
against the committed ``BENCH_*.json`` snapshots.

Each benchmark has one *headline* metric (registry below, a dot-path
into its JSON dict; numeric segments index into lists).  The gate fails
when a fresh headline is worse than the committed baseline by more than
``--tolerance`` (default 25%) in the metric's bad direction — slower
throughput/speedup for higher-is-better metrics, larger latency for
lower-is-better ones.

A *missing baseline* is skipped with a note (a brand-new benchmark has
nothing to regress against — commit its snapshot in the same PR).  A
missing *fresh* result for a bench that has a baseline is a hard
failure: the perf-smoke step silently dropping a benchmark must not
read as green.

    python benchmarks/compare_bench.py --baseline-dir . --fresh-dir fresh/
"""

from __future__ import annotations

import argparse
import json
import os

__all__ = ["REGISTRY", "extract", "compare_headline", "main"]

#: bench snapshot -> (dot-path to the headline metric, direction).
#: Direction is "higher" (bigger is better) or "lower".
REGISTRY = {
    "BENCH_engine.json": ("speedup_fast", "higher"),
    "BENCH_serving.json": ("comparison.continuous.throughput_tokens_per_round", "higher"),
    "BENCH_prefix.json": ("prefix.block_savings", "higher"),
    "BENCH_policies.json": ("sweep.pade.throughput_tokens_per_round", "higher"),
    "BENCH_slo.json": ("priority_vs_fcfs.premium_p99_ttft_improvement", "higher"),
    "BENCH_batch_decode.json": ("backends.fast.4.speedup", "higher"),
    "BENCH_async_serve.json": ("parity.round_report.throughput_tokens_per_round", "higher"),
    "BENCH_cluster.json": ("scaling.throughput_ratio", "higher"),
    "BENCH_tiering.json": ("overload.p99_ttft_improvement", "higher"),
    "BENCH_spec.json": ("speculative.accepted_tokens_per_round", "higher"),
}


def extract(data, path: str) -> float:
    """Walk a dot-path; numeric segments index into lists."""
    node = data
    for segment in path.split("."):
        if isinstance(node, list):
            node = node[int(segment)]
        elif isinstance(node, dict):
            node = node[segment]
        else:
            raise KeyError(f"cannot descend into {type(node).__name__} at {segment!r}")
    return float(node)


def compare_headline(baseline: float, fresh: float, direction: str,
                     tolerance: float = 0.25):
    """Return ``None`` if within tolerance, else a description string."""
    if direction not in ("higher", "lower"):
        raise ValueError(f"direction must be 'higher' or 'lower', got {direction!r}")
    if baseline == 0:
        return None  # a zero baseline carries no regression signal
    if direction == "higher":
        floor = baseline * (1.0 - tolerance)
        if fresh < floor:
            return (f"regressed: {fresh:.4g} < {floor:.4g} "
                    f"(baseline {baseline:.4g} - {tolerance:.0%})")
    else:
        ceiling = baseline * (1.0 + tolerance)
        if fresh > ceiling:
            return (f"regressed: {fresh:.4g} > {ceiling:.4g} "
                    f"(baseline {baseline:.4g} + {tolerance:.0%})")
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", default=".",
                        help="directory with the committed BENCH_*.json snapshots")
    parser.add_argument("--fresh-dir", default="fresh",
                        help="directory with the freshly measured BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression of each headline")
    args = parser.parse_args(argv)

    failures = []
    for name, (path, direction) in sorted(REGISTRY.items()):
        base_file = os.path.join(args.baseline_dir, name)
        fresh_file = os.path.join(args.fresh_dir, name)
        if not os.path.exists(base_file):
            print(f"SKIP  {name}: no committed baseline (new benchmark)")
            continue
        if not os.path.exists(fresh_file):
            failures.append(f"{name}: baseline exists but no fresh result")
            print(f"FAIL  {name}: no fresh result at {fresh_file}")
            continue
        with open(base_file) as fh:
            baseline = extract(json.load(fh), path)
        with open(fresh_file) as fh:
            fresh = extract(json.load(fh), path)
        verdict = compare_headline(baseline, fresh, direction, args.tolerance)
        arrow = "<" if direction == "lower" else ">"
        if verdict is None:
            print(f"OK    {name}: {path} = {fresh:.4g} "
                  f"(baseline {baseline:.4g}, want {arrow}= -{args.tolerance:.0%})")
        else:
            failures.append(f"{name}: {path} {verdict}")
            print(f"FAIL  {name}: {path} {verdict}")

    if failures:
        print(f"\n{len(failures)} headline regression(s) beyond "
              f"{args.tolerance:.0%}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nall headline metrics within tolerance of committed baselines")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
