"""Tiered KV memory benchmark: plane-progressive spill vs preempt-and-restart.

Acceptance workload (ISSUE 9): a sustained decode-growth overload — long
generations colliding under one pool budget — served twice at the *same*
DRAM budget, three claims:

* **tiering beats preempt-and-restart on tail latency** — with the
  two-tier pool, pressure sheds low-order bit-planes of cold blocks
  instead of throwing away decoded tokens, so the tiered arm's p99 TTFT
  is strictly better than the preempt arm's and it preempts no more
  often (the preempt arm must actually preempt for the comparison to
  mean anything).
* **bounded retained-set divergence** — degraded blocks score on a
  partial plane prefix whose unknown-plane weight is bounded
  (``unknown_weight_sum``), so the fraction of retained-set cells that
  differ from the exact run stays under a pinned bound.  The preempt
  arm *is* the exact reference: preempted requests restart from scratch
  and replay identical retained sets (the PR-2 invariance), so diffing
  tiered-vs-preempt measures divergence from uncontended truth.
* **byte-identical when disabled** — with tiering off the serve is
  byte-for-byte today's behavior on both kernel backends (identical
  retained-set encodings, no tiering columns in the report), and the
  tiered arm itself is backend-invariant too (spills happen on round
  boundaries after the decode flush, never splitting a fused round).

    python benchmarks/bench_tiering.py [--requests N] [--budget B]
    python benchmarks/bench_tiering.py --quick --json-out BENCH_tiering.json

``--quick`` shrinks the workloads for the CI perf-smoke job (same
assertions, less wall-clock) and ``--json-out`` archives the measured
dict as a build artifact.  Also runnable under pytest (the module-level
tests use the reduced workloads).
"""

from __future__ import annotations

import argparse
import json

import numpy as np

from repro.core.backend import set_default_backend
from repro.core.config import PadeConfig
from repro.engine import PadeEngine
from repro.engine.cache import TierConfig
from repro.eval.serving_metrics import summarize_serving
from repro.eval.workloads import build_serving_workload

#: Pinned ceiling on the fraction of retained-set cells that may differ
#: between the tiered arm and the exact (preempt) reference.  With a
#: 4-plane residency floor the unknown-weight bound is 15/255 per score,
#: which lands both CI workload sizes near ~0.15; 0.25 leaves headroom
#: without letting the answer quality drift unnoticed.
DIVERGENCE_BOUND = 0.25

#: Tier policy under test: keep 4 of 8 planes resident even when fully
#: spilled, restore up to 4 degraded blocks per round.
TIER = TierConfig(min_resident_planes=4, restore_blocks_per_round=4)


def _serve(workload, budget, max_active, tiering=None, backend=None):
    if backend is not None:
        set_default_backend(backend)
    engine = PadeEngine(PadeConfig.standard())
    results = engine.serve(
        workload,
        max_active=max_active,
        token_budget=budget,
        block_size=16,
        tiering=tiering,
    )
    scheduler = engine.last_serve
    report = summarize_serving(
        results.values(),
        occupancy=scheduler.occupancy,
        token_budget=scheduler.pool.token_budget if scheduler.pool else None,
        scheduler=scheduler,
    )
    return results, report, scheduler


def _retained_divergence(results, reference):
    """Fraction of retained-set cells differing from the reference run."""
    mismatched = total = 0
    for rid, res in results.items():
        ref = reference[rid]
        for got, want in zip(res.retained_history, ref.retained_history):
            mismatched += int((got != want).sum())
            total += got.size
    return mismatched / max(1, total)


def _p99_ttft(results):
    ttfts = [
        r.first_token_time - r.arrival_time
        for r in results.values()
        if r.first_token_time is not None
    ]
    return float(np.percentile(ttfts, 99))


def overload_comparison(
    num_requests: int = 12,
    context: int = 32,
    steps: int = 64,
    rate: float = 1.5,
    budget: int = 320,
    max_active: int = 8,
    seed: int = 7,
):
    """Preempt-and-restart vs plane-progressive spill at equal DRAM budget."""
    workload = build_serving_workload(
        num_requests, 4, context, steps, 32, rate=rate, seed=seed
    )
    res_pre, rep_pre, _ = _serve(workload, budget, max_active)
    res_tier, rep_tier, sched = _serve(workload, budget, max_active, tiering=TIER)
    p99_pre, p99_tier = _p99_ttft(res_pre), _p99_ttft(res_tier)
    pool = sched.pool
    return {
        "preempt": rep_pre,
        "tiered": rep_tier,
        "p99_ttft_preempt": p99_pre,
        "p99_ttft_tiered": p99_tier,
        "p99_ttft_improvement": p99_pre / p99_tier if p99_tier > 0 else float("inf"),
        "preemptions_preempt": rep_pre["preemptions"],
        "preemptions_tiered": rep_tier["preemptions"],
        "spill_reliefs": float(sched.spill_reliefs),
        "retained_divergence": _retained_divergence(res_tier, res_pre),
        "divergence_bound": DIVERGENCE_BOUND,
        "leak_free": pool.used_block_count == 0 and pool.plane_units_used == 0,
    }


def disabled_parity(
    num_requests: int = 8,
    context: int = 32,
    steps: int = 48,
    rate: float = 1.5,
    budget: int = 256,
    max_active: int = 6,
    seed: int = 7,
):
    """Byte-parity gates: disabled tiering is today's behavior, both backends.

    Serves the same pressured workload four ways (tiering off/on ×
    reference/fast backend) and compares the canonical retained-set
    encodings.  Off must match off, on must match on; the off report
    must carry no tiering columns and the off pool no spill traffic.
    """
    workload = build_serving_workload(
        num_requests, 4, context, steps, 32, rate=rate, seed=seed
    )
    blobs = {}
    off_report = None
    for tier_name, tiering in (("off", None), ("on", TIER)):
        for backend in ("reference", "fast"):
            results, report, sched = _serve(
                workload, budget, max_active, tiering=tiering, backend=backend
            )
            blobs[(tier_name, backend)] = b"".join(
                results[rid].retained_bytes() for rid in sorted(results)
            )
            if tiering is None:
                off_report = report
                assert sched.pool is not None
                off_spill_traffic = (
                    sched.spill_reliefs
                    + sched.pool.spill_events
                    + sched.pool.restore_events
                )
    set_default_backend("fast")
    tier_columns = [k for k in off_report if "tier" in k or "spill" in k or "planes_resident" in k]
    return {
        "disabled_backend_parity": blobs[("off", "reference")] == blobs[("off", "fast")],
        "tiered_backend_parity": blobs[("on", "reference")] == blobs[("on", "fast")],
        "tiered_differs_from_disabled": blobs[("on", "fast")] != blobs[("off", "fast")],
        "disabled_report_tier_columns": tier_columns,
        "disabled_spill_traffic": float(off_spill_traffic),
    }


def _check(overload, parity):
    assert overload["preemptions_preempt"] > 0, (
        "preempt arm never preempted -- the overload is not sustained enough "
        "for the comparison to mean anything"
    )
    assert overload["p99_ttft_tiered"] < overload["p99_ttft_preempt"], (
        f"tiered p99 TTFT {overload['p99_ttft_tiered']:.2f} not better than "
        f"preempt-and-restart {overload['p99_ttft_preempt']:.2f}"
    )
    assert overload["preemptions_tiered"] <= overload["preemptions_preempt"], (
        "tiering preempted more often than the preempt-only baseline"
    )
    assert overload["spill_reliefs"] > 0, "tiered arm never spilled"
    assert overload["retained_divergence"] <= DIVERGENCE_BOUND, (
        f"retained-set divergence {overload['retained_divergence']:.3f} "
        f"exceeds the pinned bound {DIVERGENCE_BOUND}"
    )
    assert overload["leak_free"], "tiered pool not empty after the run"
    assert parity["disabled_backend_parity"], (
        "tiering disabled: backends disagree on retained sets"
    )
    assert parity["tiered_backend_parity"], (
        "tiering enabled: backends disagree on retained sets"
    )
    assert not parity["disabled_report_tier_columns"], (
        f"disabled run leaked tiering columns: {parity['disabled_report_tier_columns']}"
    )
    assert parity["disabled_spill_traffic"] == 0, (
        "disabled run recorded spill/restore traffic"
    )


# ---------------------------------------------------------------------------
# pytest entry points (reduced workloads, same assertions as main)
# ---------------------------------------------------------------------------

def test_tiering_beats_preemption_under_overload():
    overload = overload_comparison(num_requests=8, steps=48, budget=256, max_active=6)
    parity = disabled_parity(num_requests=6, steps=40, budget=224)
    _check(overload, parity)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=12)
    parser.add_argument("--budget", type=int, default=320)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced workloads for CI perf-smoke (same assertions)",
    )
    parser.add_argument(
        "--json-out", default=None,
        help="write the measured results dict to this JSON file",
    )
    args = parser.parse_args()
    requests, budget, steps, max_active = args.requests, args.budget, 64, 8
    if args.quick:
        requests, budget, steps, max_active = 8, 256, 48, 6

    overload = overload_comparison(
        num_requests=requests, steps=steps, budget=budget, max_active=max_active
    )
    print("sustained overload at one DRAM budget (preempt vs tiered):")
    print(
        f"  preempt : p99 TTFT {overload['p99_ttft_preempt']:7.2f}  "
        f"preemptions {overload['preemptions_preempt']:.0f}"
    )
    print(
        f"  tiered  : p99 TTFT {overload['p99_ttft_tiered']:7.2f}  "
        f"preemptions {overload['preemptions_tiered']:.0f}  "
        f"spill reliefs {overload['spill_reliefs']:.0f}  "
        f"degraded-token fraction {overload['tiered']['degraded_token_fraction']:.3f}"
    )
    print(
        f"  p99 TTFT improvement {overload['p99_ttft_improvement']:.2f}x, "
        f"retained divergence {overload['retained_divergence']:.3f} "
        f"(bound {DIVERGENCE_BOUND})"
    )

    parity = disabled_parity(num_requests=max(6, requests // 2), budget=budget)
    print(
        "\nparity: disabled backends "
        f"{'identical' if parity['disabled_backend_parity'] else 'DIFFER'}, "
        "tiered backends "
        f"{'identical' if parity['tiered_backend_parity'] else 'DIFFER'}, "
        f"disabled spill traffic {parity['disabled_spill_traffic']:.0f}"
    )

    _check(overload, parity)
    print("\nall tiering gates hold")

    if args.json_out:
        payload = {"overload": overload, "parity": parity, "quick": args.quick}
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2, default=str)
        print(f"wrote {args.json_out}")


if __name__ == "__main__":
    main()
