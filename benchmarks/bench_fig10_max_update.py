"""Fig. 10(b) — max-update overhead and head-tail interleaved updating."""

from repro.eval import harness as H
from repro.eval.reporting import print_table


def test_fig10_head_tail_interleaving(benchmark):
    data = benchmark(H.fig10_max_update_overhead, seq_len=2048, tile_size=16)
    rows = [
        ["left-to-right", data["lr_max_updates"], data["lr_rescale_ops"], data["lr_tiles"]],
        ["head-tail", data["ht_max_updates"], data["ht_rescale_ops"], data["ht_tiles"]],
    ]
    print_table(
        "Fig. 10(b): max-update work across tiles",
        ["order", "max updates", "rescale ops", "tiles"],
        rows,
    )
    print(f"head-tail op reduction: {data['op_reduction']:.0%} (paper 20-40%)")
    assert data["op_reduction"] > 0.15
