"""Table III — PADE hardware configuration."""

from repro.eval import harness as H
from repro.eval.reporting import print_table


def test_table3_config(benchmark):
    data = benchmark(H.table3_config)
    print_table("Table III: PADE configuration", ["component", "value"], list(data.items()))
    assert "256" in data["Off-chip DRAM"]
