"""SLO benchmark: priority classes, deadlines and tenant fairness.

Acceptance workload (ISSUE 5): multi-tenant traffic served through the
continuous scheduler under one pool budget, three claims:

* **priority beats fcfs for the premium class** — with a premium tenant
  (small, urgent requests) sharing the pool with a bulk tenant (large,
  patient ones), the ``priority`` policy cuts the premium class's p99
  TTFT versus ``fcfs`` at the *same* token budget: admission reordering
  is free capacity for the class that pays for it.
* **fair bounds tenant starvation** — an adversarial tenant flooding the
  queue with many small requests starves deadlined victims under
  ``fcfs`` (their SLOs expire while the flood drains), collapsing Jain's
  fairness index over delivered tokens; the ``fair`` policy keeps every
  tenant's service flowing and holds the index above a pinned threshold.
* **aborts leak nothing** — requests aborted by deadline (including
  mid-chunked-prefill, with prefix sharing enabled so partially attached
  and registered blocks are in play) release every pool block: the pool
  is byte-for-byte empty after the run.

    python benchmarks/bench_slo.py [--requests N] [--budget B]
    python benchmarks/bench_slo.py --quick --json-out BENCH_slo.json

``--quick`` shrinks the workloads for the CI perf-smoke job (same
assertions, less wall-clock) and ``--json-out`` archives the measured
dict as a build artifact.  Also runnable under pytest (the module-level
tests use the reduced workloads).
"""

from __future__ import annotations

import argparse
import json

from repro.core import PadeConfig
from repro.engine import PadeEngine
from repro.eval.serving_metrics import summarize_serving
from repro.eval.workloads import TenantSpec, build_scenario_workload

#: Pinned floor for Jain's index under the adversarial-tenant workload
#: (fair policy).  1.0 = perfectly even tokens across the three tenants;
#: the fcfs baseline lands far below (~0.6) once the victims start
#: aborting, while fair holds >= 0.90 on both CI workload sizes.
JAIN_THRESHOLD = 0.85


def _serve(workload, policy, budget, block_size=16, max_active=2, **kwargs):
    engine = PadeEngine(PadeConfig.standard())
    results = engine.serve(
        workload,
        max_active=max_active,
        token_budget=budget,
        block_size=block_size,
        policy=policy,
        **kwargs,
    )
    scheduler = engine.last_serve
    report = summarize_serving(
        results.values(),
        occupancy=scheduler.occupancy,
        token_budget=scheduler.pool.token_budget if scheduler.pool else None,
        scheduler=scheduler,
    )
    return results, report, scheduler


def priority_vs_fcfs(
    num_requests: int = 18,
    budget: int = 384,
    max_active: int = 2,
    seed: int = 13,
):
    """Premium-class p99 TTFT under ``fcfs`` vs ``priority``, same budget."""
    specs = (
        TenantSpec(
            "premium", rate=0.12, share=0.4, priority=2,
            context_len=32, decode_steps=8,
        ),
        TenantSpec(
            "bulk", rate=0.5, share=0.6, priority=0,
            context_len=96, decode_steps=16,
        ),
    )
    workload = build_scenario_workload(
        "multi_tenant", num_requests, 4, 32, tenant_specs=specs, seed=seed
    )
    out = {}
    for policy in ("fcfs", "priority"):
        _, report, _ = _serve(workload, policy, budget, max_active=max_active)
        out[policy] = report
    fcfs_p99 = out["fcfs"]["p99_ttft_class2"]
    prio_p99 = out["priority"]["p99_ttft_class2"]
    out["premium_p99_ttft_fcfs"] = fcfs_p99
    out["premium_p99_ttft_priority"] = prio_p99
    out["premium_p99_ttft_improvement"] = fcfs_p99 / prio_p99 if prio_p99 > 0 else float("inf")
    return out


def fairness_under_adversary(
    victims_requests: int = 4,
    adversary_requests: int = 12,
    budget: int = 384,
    max_active: int = 2,
    seed: int = 29,
):
    """Jain index over delivered tokens with one tenant flooding the queue.

    Token entitlements are equal by construction (the adversary sends
    many small requests, each victim few large ones), so a perfectly
    fair outcome is Jain = 1.0.  Victims carry a deadline sized to a
    promptly-admitted run; under ``fcfs`` the flood's backlog expires
    those deadlines and the index collapses, under ``fair`` the
    least-served tenant always wins admission and the index stays high.
    """
    total = adversary_requests + 2 * victims_requests
    steps_adv = 6
    # Equal per-tenant token entitlements: each victim tenant's few large
    # requests add up to exactly the adversary's many small ones.
    steps_victim = (adversary_requests * steps_adv) // victims_requests
    specs = (
        TenantSpec(
            "adversary", rate=2.0, share=adversary_requests / total, priority=0,
            context_len=64, decode_steps=steps_adv,
        ),
        TenantSpec(
            "victim-a", rate=0.25, share=victims_requests / total, priority=0,
            context_len=32, decode_steps=steps_victim, deadline_ms=30.0,
        ),
        TenantSpec(
            "victim-b", rate=0.25, share=victims_requests / total, priority=0,
            context_len=32, decode_steps=steps_victim, deadline_ms=30.0,
        ),
    )
    workload = build_scenario_workload(
        "multi_tenant", total, 4, 32, tenant_specs=specs, seed=seed
    )
    out = {}
    for policy in ("fcfs", "fair"):
        _, report, _ = _serve(workload, policy, budget, max_active=max_active)
        out[policy] = report
    out["jain_fcfs"] = out["fcfs"]["jain_fairness_index"]
    out["jain_fair"] = out["fair"]["jain_fairness_index"]
    out["jain_threshold"] = JAIN_THRESHOLD
    return out


def abort_leak_check(
    num_requests: int = 10,
    budget: int = 512,
    round_tokens: int = 32,
    chunk: int = 24,
    seed: int = 41,
):
    """Deadline aborts — including mid-chunked-prefill — leak zero blocks.

    The ``doomed`` tenant's prompts need several prefill rounds under the
    round-token budget but carry a deadline too short to ever finish
    them, so their aborts fire while blocks are partially attached and
    registered in the prefix index (sharing is on).  After the run the
    pool must be byte-for-byte empty.
    """
    specs = (
        TenantSpec(
            "doomed", rate=0.3, share=0.4, priority=1,
            context_len=160, decode_steps=8, deadline_ms=6.0,
        ),
        TenantSpec(
            "steady", rate=0.4, share=0.6, priority=0,
            context_len=48, decode_steps=8,
        ),
    )
    workload = build_scenario_workload(
        "multi_tenant", num_requests, 4, 32, tenant_specs=specs, seed=seed
    )
    results, report, scheduler = _serve(
        workload, "edf", budget, prefix_sharing=True,
        round_token_budget=round_tokens, chunk_tokens=chunk,
    )
    aborted = [r for r in results.values() if r.aborted]
    mid_prefill = [r for r in aborted if 0 < r.final_length < r.prompt_tokens]
    pool = scheduler.pool
    return {
        "report": report,
        "aborted": len(aborted),
        "aborted_mid_prefill": len(mid_prefill),
        "pool_used_blocks_after": pool.used_block_count,
        "pool_free_blocks_after": pool.free_block_count,
        "pool_num_blocks": pool.num_blocks,
        "leak_free": pool.used_block_count == 0
        and pool.free_block_count == pool.num_blocks,
    }


# ---------------------------------------------------------------------------
# pytest entry points (reduced workloads, same assertions as main)
# ---------------------------------------------------------------------------

def test_priority_cuts_premium_tail():
    r = priority_vs_fcfs(num_requests=12, budget=320)
    assert r["premium_p99_ttft_priority"] < r["premium_p99_ttft_fcfs"], (
        f"priority p99 TTFT {r['premium_p99_ttft_priority']:.2f} not better "
        f"than fcfs {r['premium_p99_ttft_fcfs']:.2f} for the premium class"
    )


def test_fair_bounds_starvation():
    r = fairness_under_adversary(victims_requests=3, adversary_requests=9, budget=320)
    assert r["jain_fair"] >= JAIN_THRESHOLD, (
        f"fair Jain index {r['jain_fair']:.3f} below threshold {JAIN_THRESHOLD}"
    )
    assert r["jain_fair"] > r["jain_fcfs"], (
        f"fair ({r['jain_fair']:.3f}) not fairer than fcfs ({r['jain_fcfs']:.3f})"
    )


def test_aborts_leak_nothing():
    r = abort_leak_check(num_requests=8)
    assert r["aborted"] > 0, "workload produced no aborts to check"
    assert r["aborted_mid_prefill"] > 0, "no abort landed mid-chunked-prefill"
    assert r["leak_free"], (
        f"pool not empty after aborts: {r['pool_used_blocks_after']} blocks live"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=18)
    parser.add_argument("--budget", type=int, default=384)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced workloads for CI perf-smoke (same assertions)",
    )
    parser.add_argument(
        "--json-out", default=None,
        help="write the measured results dict to this JSON file",
    )
    args = parser.parse_args()
    requests, budget = args.requests, args.budget
    victims, adversary, leak_requests = 4, 12, 10
    if args.quick:
        requests, budget = 12, 320
        victims, adversary, leak_requests = 3, 9, 8

    prio = priority_vs_fcfs(num_requests=requests, budget=budget)
    print("premium-class tail latency at one pool budget:")
    for policy in ("fcfs", "priority"):
        rep = prio[policy]
        print(
            f"  {policy:9s}: premium p99 TTFT {rep['p99_ttft_class2']:7.2f}  "
            f"p95 {rep['p95_ttft_class2']:7.2f}  bulk p99 {rep['p99_ttft_class0']:7.2f}  "
            f"preemptions {rep['preemptions']:.0f}"
        )
    print(f"  premium p99 TTFT improvement: {prio['premium_p99_ttft_improvement']:.2f}x")

    fair = fairness_under_adversary(
        victims_requests=victims, adversary_requests=adversary, budget=budget
    )
    print("\ntenant fairness under an adversarial flood (equal entitlements):")
    for policy in ("fcfs", "fair"):
        rep = fair[policy]
        print(
            f"  {policy:5s}: Jain {rep['jain_fairness_index']:.3f}  "
            f"aborted {rep['aborted_requests']:.0f}/{rep['requests']:.0f}  "
            f"deadline miss rate {rep['deadline_miss_rate']:.2f}"
        )

    leak = abort_leak_check(num_requests=leak_requests)
    print(
        f"\nabort hygiene: {leak['aborted']} aborted "
        f"({leak['aborted_mid_prefill']} mid-prefill), pool "
        f"{leak['pool_used_blocks_after']}/{leak['pool_num_blocks']} blocks live after run"
    )

    assert prio["premium_p99_ttft_priority"] < prio["premium_p99_ttft_fcfs"], (
        "priority did not cut the premium class's p99 TTFT vs fcfs"
    )
    assert fair["jain_fair"] >= JAIN_THRESHOLD, (
        f"fair Jain index {fair['jain_fair']:.3f} below pinned {JAIN_THRESHOLD}"
    )
    assert fair["jain_fair"] > fair["jain_fcfs"], "fair not fairer than fcfs"
    assert leak["aborted"] > 0 and leak["aborted_mid_prefill"] > 0, (
        "leak check exercised no (mid-prefill) aborts"
    )
    assert leak["leak_free"], "aborted requests leaked pool blocks"
    print(
        "\nPASS: priority cuts premium p99 TTFT, fair holds Jain >= "
        f"{JAIN_THRESHOLD}, aborts leak zero blocks"
    )
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(
                {"priority_vs_fcfs": prio, "fairness": fair, "abort_leaks": leak},
                fh,
                indent=2,
            )
        print(f"wrote {args.json_out}")


if __name__ == "__main__":
    main()
