"""Fig. 23 — workload balance vs BitWave and DRAM bandwidth utilization."""

from repro.eval import harness as H
from repro.eval.reporting import print_table


def test_fig23a_workload_balance(benchmark):
    lanes = (4, 8, 16, 32)
    data = benchmark(H.fig23_workload_balance, lane_counts=lanes, seq_len=512)
    rows = []
    for n in lanes:
        for design in ("pade", "bitwave"):
            v = data[design][n]
            rows.append([design, n, round(v["useful"], 3), round(v["intra_pe_stall"], 3),
                         round(v["inter_pe_stall"], 3)])
    print_table(
        "Fig. 23(a): PE-cycle breakdown vs #lanes",
        ["design", "lanes", "useful", "intra-PE stall", "inter-PE stall"],
        rows,
    )
    for n in lanes:
        assert data["pade"][n]["useful"] > data["bitwave"][n]["useful"]
        assert data["pade"][n]["intra_pe_stall"] <= data["bitwave"][n]["intra_pe_stall"]


def test_fig23b_bandwidth(benchmark):
    data = benchmark(H.fig23_bandwidth, (("mmlu", 512), ("wikitext2", 1024)))
    for wl, designs in data.items():
        rows = [
            [name, round(v["dram"], 3), round(v["speedup"], 2), round(v["bw_utilization"], 3)]
            for name, v in designs.items()
        ]
        print_table(
            f"Fig. 23(b) [{wl}]: DRAM access (dense = 1), speedup, BW utilization",
            ["design", "dram access", "speedup", "bw util"],
            rows,
        )
        assert designs["pade_dl"]["dram"] < 1.0
        assert designs["pade_dl"]["speedup"] >= designs["pade_no_dl"]["speedup"]
        assert designs["pade_dl"]["bw_utilization"] >= designs["pade_no_dl"]["bw_utilization"]
