"""Benchmark-suite configuration.

Every file regenerates one table or figure of the paper (see DESIGN.md §4).
Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
regenerated rows/series printed in the paper's layout).
"""

import pytest


@pytest.fixture(autouse=True)
def _print_header(request, capsys):
    yield
    # flush the printed tables even under capture when -rA is used
