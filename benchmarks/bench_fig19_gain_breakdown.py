"""Fig. 19 — energy-efficiency & throughput gain waterfall over the GPU."""

from repro.eval import harness as H
from repro.eval.reporting import print_table


def test_fig19_waterfall(benchmark):
    data = benchmark(H.fig19_gain_breakdown, seq_len=2048)
    eff, thr = data["energy_efficiency"], data["throughput"]
    rows = [[k, round(v, 2)] for k, v in eff.items()]
    print_table("Fig. 19(a): cumulative energy-efficiency gain (GPU = 1)", ["step", "gain"], rows)
    rows = [[k, round(v, 2)] for k, v in thr.items()]
    print_table("Fig. 19(b): cumulative throughput gain (GPU = 1)", ["step", "gain"], rows)
    assert eff["baseline_asic"] == 4.0  # anchored to the paper's measurement
    assert eff["+ista"] > eff["+bs_ooe"] > eff["+bui_gf"] > eff["baseline_asic"]
    assert thr["+ista"] > thr["baseline_asic"] == 1.5
