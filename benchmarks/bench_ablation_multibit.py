"""Ablation: multi-bit stage fusion (§VI-G future-work exploration).

Sweeps the bit-group size of the fused filter: coarser groups cut decision
and scoreboard overhead but fetch extra planes past the point a 1-bit design
would have pruned.  The paper hypothesizes a sweet spot may exist beyond
single-bit granularity; this bench quantifies the trade-off on the synthetic
workloads.
"""

import numpy as np

from repro.core.bui_gf import guard_in_int_units
from repro.core.multibit import multibit_filter
from repro.eval.reporting import print_table
from repro.model.synthetic import PROFILE_PRESETS, synthesize_qkv
from repro.quant.bitplane import decompose_bitplanes
from repro.quant.integer import quantize_symmetric
from repro.sim.tech import DEFAULT_TECH


def _setup(seq_len=1024):
    rng = np.random.default_rng(31)
    q, k, v = synthesize_qkv(8, seq_len, 64, PROFILE_PRESETS["nlp"], rng)
    qi = quantize_symmetric(q)
    ki = quantize_symmetric(k)
    planes = decompose_bitplanes(ki.data)
    guard = guard_in_int_units(0.6, 5.0, float(qi.scale) * float(ki.scale) / 8.0)
    return qi.data, planes, guard


def test_multibit_tradeoff(benchmark):
    q_int, planes, guard = _setup()

    def sweep():
        out = {}
        for group in (1, 2, 4, 8):
            results = multibit_filter(q_int, planes, guard, group=group)
            loads = sum(r.bit_plane_loads for r in results)
            rounds = sum(r.decision_rounds for r in results)
            sparsity = float(np.mean([r.sparsity for r in results]))
            out[group] = (loads, rounds, sparsity)
        return out

    data = benchmark(sweep)
    t = DEFAULT_TECH
    rows = []
    base_loads = data[1][0]
    for group, (loads, rounds, sparsity) in data.items():
        # decision energy: compare + scoreboard round trip per round per lane
        decision_pj = rounds * (t.comparator_pj + 2 * t.scoreboard_access_pj) * 1e3
        rows.append([group, loads, round(loads / base_loads, 2), rounds,
                     round(sparsity, 3), round(decision_pj, 1)])
    print_table(
        "multi-bit fusion: plane loads vs decision overhead",
        ["group", "plane loads", "vs 1-bit", "decision rounds", "sparsity", "decision nJ"],
        rows,
    )
    # The structural trade-off must hold: loads rise, rounds fall.
    assert data[1][0] <= data[2][0] <= data[8][0]
    assert data[1][1] >= data[2][1] >= data[8][1]
    # and every granularity reaches comparable sparsity (safety unchanged)
    assert abs(data[1][2] - data[2][2]) < 0.1
