"""Cross-request batched decode benchmark: fused filter round vs loop.

Roofline-style sweep for ISSUE 6: the same decode workload — ``R`` active
requests with ragged context lengths, each advancing one token per round
— is served two ways on each kernel backend:

* **loop** — the per-request path: one ``engine.decode_step`` per active
  request per round (what ``--no-batched-decode`` serves);
* **fused** — ``engine.decode_step_batch``: every request's K/V token is
  appended, then **one** cross-request ``filter_heads_batch`` call covers
  the whole ragged active set (padding + validity mask + batch-wide
  column compaction).

Time-per-round is measured at active-set sizes 1→32 (best of
``REPEATS`` runs per mode, fresh engines each run).  The default
workload is the regime cross-request fusion exists for — a busy decode
round over many modest per-request contexts at serving KV-head counts
(GQA models cache 2–8 KV heads; the engine's caches are shaped by
``num_kv_heads``), where the per-request path is dispatch-bound and the
fused round amortizes one dispatch across the set.  Growing ``--context``
moves every size toward the compute-bound roofline where both paths
converge on the same arithmetic and the ratio falls toward 1.

The script asserts (a) retained sets are byte-identical between the two
modes and across backends at every size, (b) on the fast backend the
fused round beats the loop at every active-set size >= 8, and (c) the
fused round is >= 3x faster at active-set 16 (the ISSUE 6 acceptance
bar).

    python benchmarks/bench_batch_decode.py [--context S] [--steps T]
    python benchmarks/bench_batch_decode.py --quick --json-out BENCH_batch_decode.json

``--quick`` shrinks the sweep for the CI perf-smoke job (same assertions,
less wall-clock) and ``--json-out`` archives the measured dict.  Also
runnable under pytest (the module-level test uses the reduced sweep).
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.core import PadeConfig
from repro.engine import PadeEngine
from repro.engine.cache import PagedBitPlaneKVCache, PlaneBlockPool
from repro.eval.workloads import build_engine_request

#: Ragged context pattern: request i's prompt is ``context +
#: RAGGED_STRIDE * (i % RAGGED_PERIOD)`` tokens — a bounded mix of
#: lengths, so the fused lattice always carries real padding but the
#: padded width doesn't grow with the active-set size (which would
#: conflate the roofline's x-axis with per-request problem size).
RAGGED_STRIDE = 5
RAGGED_PERIOD = 4

#: Timing repetitions per (backend, size, mode); the minimum is reported.
REPEATS = 3


def _requests(active, context, steps, num_heads, head_dim):
    return [
        build_engine_request(
            f"r{i}", num_heads, context + RAGGED_STRIDE * (i % RAGGED_PERIOD), steps,
            head_dim=head_dim, seed=200 + i,
        )
        for i in range(active)
    ]


def _prefilled_caches(engine, requests, block_size=16):
    """One paged cache per request, prefilled, over a shared pool."""
    first = np.asarray(requests[0].k)
    num_heads, _, head_dim = first.shape
    v_dim = np.asarray(requests[0].v).shape[2]
    budget = sum(
        block_size * -(-req.total_tokens // block_size) for req in requests
    )
    pool = PlaneBlockPool(
        num_heads, head_dim, v_dim, bits=engine.config.bits,
        block_size=block_size, token_budget=budget,
    )
    caches = []
    for req in requests:
        cache = PagedBitPlaneKVCache(pool)
        engine.prefill(cache, req.k, req.v, total_tokens=req.total_tokens)
        caches.append(cache)
    return caches


def _digest(retained_history):
    return b"".join(
        np.packbits(np.asarray(r, dtype=bool).astype(np.uint8)).tobytes()
        for r in retained_history
    )


def _run_loop(backend, requests, steps):
    """One per-request-loop run on a fresh engine; returns (time, retained, stats)."""
    engine = PadeEngine(PadeConfig.standard(), backend=backend)
    caches = _prefilled_caches(engine, requests)
    retained = [[] for _ in requests]
    t0 = time.perf_counter()
    for t in range(steps):
        for i, (cache, req) in enumerate(zip(caches, requests)):
            res = engine.decode_step(
                cache, req.decode_q[:, t, :], req.decode_k[:, t, :], req.decode_v[:, t, :]
            )
            retained[i].append(res.retained[:, 0, :])
    return time.perf_counter() - t0, retained, engine.stats


def _run_fused(backend, requests, steps):
    """One batched-round run on a fresh engine; returns (time, retained, stats)."""
    engine = PadeEngine(PadeConfig.standard(), backend=backend)
    caches = _prefilled_caches(engine, requests)
    retained = [[] for _ in requests]
    t0 = time.perf_counter()
    for t in range(steps):
        step_results = engine.decode_step_batch(
            [
                (cache, req.decode_q[:, t, :], req.decode_k[:, t, :], req.decode_v[:, t, :])
                for cache, req in zip(caches, requests)
            ]
        )
        for i, res in enumerate(step_results):
            retained[i].append(res.retained[:, 0, :])
    return time.perf_counter() - t0, retained, engine.stats


def measure_active_set(backend, active, context, steps, num_heads, head_dim):
    """Time `steps` decode rounds over `active` requests, loop vs fused.

    Each mode runs ``REPEATS`` times on fresh engines and reports its best
    wall-clock (single-shot timings on a shared box are too noisy to gate
    CI on); retained sets and stats are identical across repeats by
    construction, so parity is checked on the last run of each.
    """
    requests = _requests(active, context, steps, num_heads, head_dim)
    loop_s = fused_s = float("inf")
    for _ in range(REPEATS):
        t_loop, loop_retained, loop_stats = _run_loop(backend, requests, steps)
        t_fused, fused_retained, fused_stats = _run_fused(backend, requests, steps)
        loop_s = min(loop_s, t_loop)
        fused_s = min(fused_s, t_fused)

    retained_identical = all(
        _digest(a) == _digest(b) for a, b in zip(loop_retained, fused_retained)
    )
    # Shared filter counters must agree exactly — the fused round does the
    # same logical work, just in one dispatch.
    counters_identical = all(
        getattr(loop_stats, f) == getattr(fused_stats, f)
        for f in ("filter_calls", "bit_plane_loads", "effective_bit_ops",
                  "naive_bit_ops", "retained_keys", "candidate_keys")
    )
    return {
        "active": active,
        "loop_round_ms": 1e3 * loop_s / steps,
        "fused_round_ms": 1e3 * fused_s / steps,
        "speedup": loop_s / fused_s,
        "batch_efficiency": fused_stats.batch_efficiency,
        "batched_rounds": fused_stats.batched_rounds,
        "retained_identical": retained_identical,
        "counters_identical": counters_identical,
        "retained_digest": _digest(
            [r for hist in fused_retained for r in hist]
        ).hex()[:32],
    }


def run_roofline(active_sizes, context, steps, num_heads=2, head_dim=48,
                 backends=("fast", "reference")):
    """Sweep time-per-round vs active-set size on every backend."""
    out = {
        "active_sizes": list(active_sizes),
        "context": context,
        "steps": steps,
        "num_heads": num_heads,
        "head_dim": head_dim,
        "backends": {},
    }
    for backend in backends:
        out["backends"][backend] = [
            measure_active_set(backend, a, context, steps, num_heads, head_dim)
            for a in active_sizes
        ]
    _check(out)
    return out


def _check(out) -> None:
    """The acceptance assertions (raise AssertionError on regression)."""
    per_backend = out["backends"]
    for backend, rows in per_backend.items():
        for row in rows:
            assert row["retained_identical"], (
                f"{backend}: fused retained sets diverged from the loop "
                f"at active={row['active']}"
            )
            assert row["counters_identical"], (
                f"{backend}: fused stats diverged from the loop "
                f"at active={row['active']}"
            )
    names = list(per_backend)
    for other in names[1:]:
        for row_a, row_b in zip(per_backend[names[0]], per_backend[other]):
            assert row_a["retained_digest"] == row_b["retained_digest"], (
                f"retained sets differ between {names[0]} and {other} "
                f"at active={row_a['active']}"
            )
    fast = {row["active"]: row for row in per_backend.get("fast", [])}
    for active, row in fast.items():
        if active >= 8:
            assert row["speedup"] > 1.0, (
                f"fused round slower than the loop at active={active} "
                f"({row['speedup']:.2f}x)"
            )
    if 16 in fast:
        assert fast[16]["speedup"] >= 3.0, (
            f"fused speedup at active=16 is {fast[16]['speedup']:.1f}x < 3x"
        )


def test_fused_round_beats_loop():
    """Reduced sweep for the benchmark suite: same assertions, less time."""
    run_roofline((1, 8, 16), context=24, steps=8)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--context", type=int, default=24,
                        help="base prompt length (request i adds "
                        f"{RAGGED_STRIDE}*(i%%{RAGGED_PERIOD}) ragged tokens)")
    parser.add_argument("--steps", type=int, default=8)
    parser.add_argument("--heads", type=int, default=2,
                        help="KV heads per request (GQA serving caches "
                        "num_kv_heads, typically 2-8)")
    parser.add_argument("--head-dim", type=int, default=48)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sweep for CI perf-smoke (same assertions)",
    )
    parser.add_argument(
        "--json-out", default=None,
        help="write the measured results dict to this JSON file",
    )
    args = parser.parse_args()
    sizes = (1, 2, 4, 8, 16, 32)
    if args.quick:
        sizes = (1, 8, 16)

    print(f"batched decode roofline: {args.heads} KV heads, base context "
          f"{args.context} (+{RAGGED_STRIDE}*(i%{RAGGED_PERIOD}) ragged), "
          f"{args.steps} rounds, active sizes {sizes}")
    out = run_roofline(sizes, args.context, args.steps, args.heads, args.head_dim)
    for backend, rows in out["backends"].items():
        print(f"  [{backend}]")
        for row in rows:
            print(f"    active={row['active']:3d}  loop {row['loop_round_ms']:8.2f} ms/round"
                  f"  fused {row['fused_round_ms']:8.2f} ms/round"
                  f"  ({row['speedup']:4.1f}x, lattice {row['batch_efficiency']:.0%} full)")
    print("  PASS: fused == loop retention on every backend; fast backend "
          "fused round faster at active >= 8"
          + (", >= 3x at 16" if 16 in out["active_sizes"] else ""))
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(out, fh, indent=2)
        print(f"  wrote {args.json_out}")


if __name__ == "__main__":
    main()
