"""Prefix-sharing + chunked-prefill benchmark over the paged plane pool.

Acceptance workload (ISSUE 3), two halves:

* **prefix sharing** — eight requests sharing a 512-token system prompt
  are served with hash-based copy-on-write prefix sharing off and on.
  The script asserts (a) every request's retained-token sets are
  byte-identical between the two modes under both kernel backends
  (sharing must be invisible to the attention path), and (b) the shared
  run's peak pool footprint is >= 30% smaller (blocks and bytes saved
  are reported, along with the prefill decompose work avoided).
* **chunked prefill** — a mixed-length stream (one long prompt ahead of
  several short requests) is served under the round-token cost model,
  unchunked vs chunked.  The script asserts the short requests' p95 TTFT
  improves with chunking and that retained sets stay byte-identical
  (chunk boundaries never change the stored planes: scales are frozen on
  the full prompt).

    python benchmarks/bench_prefix.py [--requests N] [--prefix P] [--quick]
    python benchmarks/bench_prefix.py --quick --json-out BENCH_prefix.json

Also runnable under pytest (the module-level tests use reduced workloads
so the benchmark suite stays tractable).
"""

from __future__ import annotations

import argparse
import json

from repro.core import PadeConfig
from repro.engine import PadeEngine
from repro.eval.serving_metrics import summarize_serving
from repro.eval.workloads import build_engine_request, build_prefix_workload


def _serve(workload, backend, budget, block_size, max_active, **kwargs):
    engine = PadeEngine(PadeConfig.standard(), backend=backend)
    results = engine.serve(
        workload,
        max_active=max_active,
        token_budget=budget,
        block_size=block_size,
        **kwargs,
    )
    return engine, results, engine.last_serve


def run_prefix_comparison(
    num_requests: int = 8,
    prefix_len: int = 512,
    unique_len: int = 32,
    steps: int = 4,
    num_heads: int = 4,
    head_dim: int = 32,
    block_size: int = 16,
    seed: int = 9,
):
    """Peak pool blocks + retained-set parity, sharing off vs on, both backends."""
    workload = build_prefix_workload(
        num_requests, num_heads, prefix_len, unique_len, steps, head_dim, seed=seed
    )
    # Ample budget: savings are measured as peak live blocks, not evictions.
    budget = num_requests * (prefix_len + unique_len + steps + 2 * block_size)
    out = {"parity_ok": True}
    reference_bytes = None
    for backend in ("fast", "reference"):
        off_engine, off, off_sched = _serve(
            workload, backend, budget, block_size, num_requests
        )
        on_engine, on, on_sched = _serve(
            workload, backend, budget, block_size, num_requests, prefix_sharing=True
        )
        digests = {rid: on[rid].retained_bytes() for rid in sorted(on)}
        for rid in digests:
            if digests[rid] != off[rid].retained_bytes():
                out["parity_ok"] = False
        if reference_bytes is None:
            reference_bytes = digests
        elif digests != reference_bytes:
            out["parity_ok"] = False
        if backend == "fast":
            report = summarize_serving(
                on.values(),
                occupancy=on_sched.occupancy,
                token_budget=on_sched.pool.token_budget,
                scheduler=on_sched,
            )
            peak_off = off_sched.pool.peak_used_blocks
            peak_on = on_sched.pool.peak_used_blocks
            out.update(
                {
                    "requests": num_requests,
                    "prefix_tokens": prefix_len,
                    "peak_blocks_unshared": peak_off,
                    "peak_blocks_shared": peak_on,
                    "block_savings": 1.0 - peak_on / peak_off,
                    "pool_bytes_saved": (peak_off - peak_on)
                    * on_sched.pool.bytes_per_block,
                    "prefix_hit_rate": report["prefix_hit_rate"],
                    "prefix_blocks_saved": report["prefix_blocks_saved"],
                    "rows_decomposed_unshared": off_engine.stats.rows_decomposed,
                    "rows_decomposed_shared": on_engine.stats.rows_decomposed,
                    "prefill_rows_saved": off_engine.stats.rows_decomposed
                    - on_engine.stats.rows_decomposed,
                }
            )
    return out


def _mixed_workload(
    long_context: int,
    short_context: int,
    num_short: int,
    steps: int,
    num_heads: int,
    head_dim: int,
    seed: int,
):
    """One long prompt arriving first, short requests right behind it."""
    requests = [
        build_engine_request(
            "long", num_heads, long_context, steps, head_dim,
            seed=seed, arrival_time=0.0,
        )
    ]
    for i in range(num_short):
        requests.append(
            build_engine_request(
                f"short{i}", num_heads, short_context, steps, head_dim,
                seed=seed + 17 * (i + 1), arrival_time=1.0 + 0.5 * i,
            )
        )
    return requests


def run_chunked_ttft(
    long_context: int = 384,
    short_context: int = 32,
    num_short: int = 6,
    steps: int = 6,
    num_heads: int = 4,
    head_dim: int = 32,
    round_tokens: int = 64,
    chunk: int = 48,
    block_size: int = 16,
    seed: int = 23,
):
    """Short-request p95 TTFT: unchunked vs chunked prefill, same budget."""
    import numpy as np

    workload = _mixed_workload(
        long_context, short_context, num_short, steps, num_heads, head_dim, seed
    )
    budget = 2 * (long_context + num_short * short_context)
    out = {"parity_ok": True}
    runs = {}
    for mode, chunk_tokens in (("unchunked", 0), ("chunked", chunk)):
        _, results, sched = _serve(
            workload, "fast", budget, block_size, num_short + 1,
            chunk_tokens=chunk_tokens, round_token_budget=round_tokens,
        )
        short_ttft = [
            r.first_token_time - r.arrival_time
            for rid, r in results.items()
            if rid != "long"
        ]
        runs[mode] = results
        out[mode] = {
            "p95_short_ttft": float(np.percentile(short_ttft, 95)),
            "mean_short_ttft": float(np.mean(short_ttft)),
            "long_ttft": results["long"].first_token_time
            - results["long"].arrival_time,
            "decode_blocked_rounds": sched.decode_blocked_rounds,
            "chunk_stall_rounds": sched.chunk_stall_rounds,
        }
    for rid in runs["unchunked"]:
        if (
            runs["unchunked"][rid].retained_bytes()
            != runs["chunked"][rid].retained_bytes()
        ):
            out["parity_ok"] = False
    out["p95_short_ttft_improvement"] = (
        out["unchunked"]["p95_short_ttft"] / out["chunked"]["p95_short_ttft"]
    )
    return out


def test_prefix_sharing_saves_blocks():
    """Reduced workload for the benchmark suite: same assertions, less time."""
    r = run_prefix_comparison(num_requests=4, prefix_len=128, unique_len=16, steps=2)
    assert r["parity_ok"], "retained sets changed when prefix sharing was enabled"
    assert r["block_savings"] >= 0.30, f"block savings {r['block_savings']:.0%} < 30%"
    assert r["prefill_rows_saved"] > 0, "sharing saved no decompose work"


def test_chunked_prefill_improves_short_ttft():
    r = run_chunked_ttft(long_context=192, num_short=4, steps=4)
    assert r["parity_ok"], "chunked prefill changed retained sets"
    assert r["chunked"]["p95_short_ttft"] < r["unchunked"]["p95_short_ttft"], (
        f"chunked p95 short TTFT {r['chunked']['p95_short_ttft']:.1f} not better "
        f"than unchunked {r['unchunked']['p95_short_ttft']:.1f}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=8)
    parser.add_argument("--prefix", type=int, default=512)
    parser.add_argument("--unique", type=int, default=32)
    parser.add_argument("--steps", type=int, default=4)
    parser.add_argument("--heads", type=int, default=4)
    parser.add_argument("--head-dim", type=int, default=32)
    parser.add_argument("--block-size", type=int, default=16)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced decode/backend sweep for CI perf-smoke",
    )
    parser.add_argument(
        "--json-out", default=None,
        help="write the combined results dict to this JSON file",
    )
    args = parser.parse_args()

    steps = 2 if args.quick else args.steps
    print(
        f"prefix sweep: {args.requests} requests sharing a {args.prefix}-token "
        f"prefix (+{args.unique} unique), blocks of {args.block_size}"
    )
    prefix = run_prefix_comparison(
        args.requests, args.prefix, args.unique, steps,
        args.heads, args.head_dim, args.block_size,
    )
    print(f"  peak pool blocks        : {prefix['peak_blocks_unshared']} unshared "
          f"-> {prefix['peak_blocks_shared']} shared "
          f"({prefix['block_savings']:.0%} saved, "
          f"{prefix['pool_bytes_saved'] / 1024:.0f} KiB)")
    print(f"  prefix hit rate         : {prefix['prefix_hit_rate']:.0%}")
    print(f"  prefill rows decomposed : {prefix['rows_decomposed_unshared']} -> "
          f"{prefix['rows_decomposed_shared']}")
    print(f"  retained sets identical : {prefix['parity_ok']} "
          f"(sharing on/off, both backends)")

    chunked = run_chunked_ttft(
        long_context=192 if args.quick else 384,
        num_short=4 if args.quick else 6,
        steps=4 if args.quick else 6,
        num_heads=args.heads, head_dim=args.head_dim,
    )
    print("\nchunked prefill (round-token cost model, one long prompt ahead "
          "of short requests):")
    for mode in ("unchunked", "chunked"):
        rep = chunked[mode]
        print(f"  {mode:9s}: p95 short TTFT {rep['p95_short_ttft']:6.1f}  "
              f"mean {rep['mean_short_ttft']:6.1f}  long TTFT {rep['long_ttft']:5.1f}  "
              f"decode-blocked {rep['decode_blocked_rounds']:3d}  "
              f"chunk-stalls {rep['chunk_stall_rounds']:3d}")
    print(f"  p95 short-TTFT improvement: "
          f"{chunked['p95_short_ttft_improvement']:.2f}x")

    assert prefix["parity_ok"], "prefix sharing changed retained sets"
    assert prefix["block_savings"] >= 0.30, (
        f"block savings {prefix['block_savings']:.0%} < 30%"
    )
    assert chunked["parity_ok"], "chunked prefill changed retained sets"
    assert chunked["chunked"]["p95_short_ttft"] < chunked["unchunked"]["p95_short_ttft"], (
        "chunked prefill did not improve short-request p95 TTFT"
    )
    print("\nPASS: >=30% pool-block savings with byte-identical retention; "
          "chunked prefill improves short-request p95 TTFT")

    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump({"prefix": prefix, "chunked": chunked}, fh, indent=2)
        print(f"wrote {args.json_out}")


if __name__ == "__main__":
    main()
