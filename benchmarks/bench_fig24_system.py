"""Fig. 24 — GPU + PADE co-processor system integration."""

from repro.eval import harness as H
from repro.eval.reporting import print_table


def test_fig24_system_integration(benchmark):
    entries = (("dolly-15k", 15_000), ("infinitebench-214k", 214_000), ("niah-1m", 1_000_000))
    data = benchmark(H.fig24_system_integration, entries)
    rows = [
        [k, 1.0, round(v["gpu_pade_no_conv"], 3), round(v["gpu_pade_conv"], 3),
         round(v["speedup"], 2)]
        for k, v in data.items()
    ]
    print_table(
        "Fig. 24(c): end-to-end latency (GPU-only = 1)",
        ["workload", "GPU", "GPU+PADE w/o conv", "GPU+PADE w/ conv", "speedup"],
        rows,
    )
    # Paper: ~2.1x at 214k, layout conversion worth ~1.9x more at scale.
    assert data["infinitebench-214k"]["speedup"] > 1.5
    assert data["niah-1m"]["speedup"] >= data["dolly-15k"]["speedup"]
    for v in data.values():
        # the layout conversion costs <2% on the GPU stage and pays off as
        # soon as the PADE stage matters (always at long contexts)
        assert v["gpu_pade_conv"] <= v["gpu_pade_no_conv"] * 1.03
