"""Fig. 20 — area and power breakdown of PADE (28 nm, 800 MHz)."""

from repro.eval import harness as H
from repro.eval.reporting import print_table


def test_fig20_area_power(benchmark):
    data = benchmark(H.fig20_area_power)
    rows = [
        [name, round(area, 3), round(data["power_mw"].get(name, 0.0), 1)]
        for name, area in data["area_mm2"].items()
    ]
    rows.append(["TOTAL", round(sum(data["area_mm2"].values()), 2),
                 round(sum(data["power_mw"].values()), 0)])
    print_table("Fig. 20: area (mm²) / power (mW) breakdown", ["component", "area", "power"], rows)
    o = data["overheads"]
    print(f"BUI support: {o['bui_area_frac']:.1%} area / {o['bui_power_frac']:.1%} power "
          f"(paper 4.9%/12.1%); fusion support: {o['fusion_area_frac']:.1%}/{o['fusion_power_frac']:.1%} "
          f"(paper 5.8%/4.9%)")
    assert abs(sum(data["area_mm2"].values()) - 4.53) < 0.05
    assert abs(sum(data["power_mw"].values()) - 591) < 5
