"""Fig. 5(f) — untiled memory access growth with parallel queries."""

from repro.eval import harness as H
from repro.eval.reporting import print_series


def test_fig5_untiled_memory(benchmark):
    ps = (8, 16, 24, 32, 40)
    data = benchmark(H.fig5_untiled_memory, parallel_queries=ps)
    print_series("Fig. 5(f): normalized memory access vs P (no tiling)", list(ps), data)
    # Paper: P 8 -> 32 grows >12x with 240kB SRAM.
    growth = data["240kB"][3] / data["240kB"][0]
    print(f"240kB growth P=8->32: {growth:.1f}x (paper >12x)")
    assert growth > 6.0
    assert data["320kB"][3] <= data["240kB"][3]
