"""Fig. 16 — technique ablation and the α accuracy/sparsity trade-off."""

from repro.eval import harness as H
from repro.eval.reporting import print_table


def test_fig16a_ablation(benchmark):
    data = benchmark(H.fig16_ablation, model_names=("llama2-7b", "opt-1b3"), seq_len=512)
    steps = ["baseline", "+BUI-GF", "+BS-OOE", "+ISTA"]
    rows = [[m] + [round(data[m][s], 3) for s in steps] for m in data]
    print_table("Fig. 16(a): normalized latency per technique", ["model"] + steps, rows)
    avg = data["average"]
    assert avg["+BUI-GF"] < 1.0
    assert avg["+BS-OOE"] < avg["+BUI-GF"]
    assert avg["+ISTA"] <= avg["+BS-OOE"] * 1.1


def test_fig16b_alpha_tradeoff(benchmark):
    alphas = (0.8, 0.7, 0.6, 0.5, 0.4, 0.3)
    data = benchmark(H.fig16_alpha_tradeoff, alphas)
    rows = [
        [a, round(data["acc_mmlu"][a], 2), round(data["acc_mbpp"][a], 2),
         round(data["spa_mmlu"][a], 1), round(data["spa_mbpp"][a], 1)]
        for a in alphas
    ]
    print_table(
        "Fig. 16(b): α vs accuracy & sparsity",
        ["alpha", "acc MMLU", "acc MBPP", "sparsity MMLU %", "sparsity MBPP %"],
        rows,
    )
    # generation (MBPP) degrades earlier than reasoning (MMLU)
    drop_mbpp = data["acc_mbpp"][0.8] - data["acc_mbpp"][0.4]
    drop_mmlu = data["acc_mmlu"][0.8] - data["acc_mmlu"][0.4]
    assert drop_mbpp > drop_mmlu * 0.9
    assert data["spa_mmlu"][0.3] > data["spa_mmlu"][0.8]
