"""Micro-benchmarks of the core kernels (timing, not figure regeneration).

These track the library's own performance: the fused BSF filter (both
registered backends), ISTA, the dense references, and the cycle simulator.
Kernels are reached through the backend registry, never imported directly.
"""

import numpy as np
import pytest

from repro.attention.dense import dense_attention
from repro.attention.flash import flash_attention
from repro.core import PadeConfig, get_backend, pade_attention
from repro.core.bui_gf import guard_in_int_units
from repro.model.synthetic import PROFILE_PRESETS, synthesize_qkv
from repro.quant.bitplane import decompose_bitplanes
from repro.quant.integer import quantize_symmetric
from repro.sim.accelerator import AcceleratorConfig, PadeAccelerator


@pytest.fixture(scope="module")
def qkv():
    return synthesize_qkv(8, 1024, 64, PROFILE_PRESETS["nlp"], np.random.default_rng(0))


def test_bench_dense_attention(benchmark, qkv):
    q, k, v = qkv
    benchmark(dense_attention, q, k, v)


def test_bench_flash_attention(benchmark, qkv):
    q, k, v = qkv
    benchmark(flash_attention, q, k, v, 64)


def test_bench_pade_attention(benchmark, qkv):
    q, k, v = qkv
    res = benchmark(pade_attention, q, k, v, PadeConfig.standard())
    assert res.sparsity > 0.5


@pytest.mark.parametrize("backend", ["reference", "fast"])
def test_bench_bsf_filter(benchmark, qkv, backend):
    q, k, v = qkv
    qi = quantize_symmetric(q)
    ki = quantize_symmetric(k)
    planes = decompose_bitplanes(ki.data)
    guard = guard_in_int_units(0.6, 5.0, float(qi.scale) * float(ki.scale) / 8.0)
    res = benchmark(get_backend(backend).filter, qi.data, planes, guard)
    assert res.sparsity > 0.5


def test_bench_cycle_simulator(benchmark, qkv):
    q, k, v = qkv
    acc = PadeAccelerator(AcceleratorConfig())
    report = benchmark(acc.run_head, q, k, v)
    assert report.latency_cycles > 0
