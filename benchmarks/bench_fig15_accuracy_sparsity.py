"""Fig. 15 — accuracy vs sparsity level, and HW+SW co-design gains."""

from repro.eval import harness as H
from repro.eval.reporting import print_series, print_table

LEVELS = (1.0, 0.5, 0.25, 0.125, 0.0625)


def test_fig15ab_accuracy_vs_sparsity(benchmark):
    data = benchmark(H.fig15_accuracy_vs_sparsity, levels=LEVELS)
    print_series(
        "Fig. 15(a/b): proxy accuracy vs sparsity level",
        [f"1/{int(1/l)}" if l < 1 else "1" for l in LEVELS],
        data,
    )
    # PADE is the best method at the most aggressive level.
    for method in ("streaming_llm", "minference", "double_sparsity", "spatten", "dtatrans"):
        assert data["pade"][-1] >= data[method][-1] - 0.5
    # StreamingLLM (static) trails the adaptive methods at moderate levels.
    assert data["streaming_llm"][1] <= data["minference"][1] + 0.5


def test_fig15c_speedup_energy(benchmark):
    data = benchmark(H.fig15_speedup_energy, ("dolly", "pg19", "infinitebench"))
    rows = [[k, round(v["latency_gain"], 2), round(v["energy_gain"], 2)] for k, v in data.items()]
    print_table(
        "Fig. 15(c): PADE vs software sparse attention on GPU (@~1% loss)",
        ["workload", "latency gain", "energy-efficiency gain"],
        rows,
    )
    # Paper: average 5.2x speedup / 10.4x efficiency, growing with length.
    assert data["infinitebench"]["latency_gain"] > data["dolly"]["latency_gain"]
    assert all(v["energy_gain"] > 3 for v in data.values())
