"""Fig. 4(c) — memory/compute reduction: stage splitting vs BSF."""

from repro.eval import harness as H
from repro.eval.reporting import print_table


def test_fig4_bsf_vs_stage_splitting(benchmark):
    data = benchmark(H.fig4_bsf_reduction, seq_len=1024, num_layers=4)
    for metric in ("memory_reduction", "compute_reduction"):
        d = data[metric]
        rows = [
            [f"layer {i}" if i < 4 else "geomean", round(d["stage_splitting"][i], 3), round(d["bsf"][i], 3)]
            for i in range(5)
        ]
        print_table(f"Fig. 4(c) {metric} over dense", ["layer", "stage splitting", "BSF"], rows)
    mem_ratio = data["memory_reduction"]["bsf"][-1] / data["memory_reduction"]["stage_splitting"][-1]
    comp_ratio = data["compute_reduction"]["bsf"][-1] / data["compute_reduction"]["stage_splitting"][-1]
    print(f"BSF advantage: {mem_ratio:.1f}x memory (paper 4.6x), {comp_ratio:.1f}x compute (paper 2.1x)")
    assert mem_ratio > 1.5 and comp_ratio > 1.5
