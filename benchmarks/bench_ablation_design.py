"""Ablations for the DESIGN.md design choices not covered by a paper figure.

* guard radius (the paper fixes radius = 5; how sensitive is the
  accuracy/sparsity balance to it?),
* ISTA tile size Bc (Fig. 10b fixes 16),
* RARS buffer depth,
* head-tail interleaving vs left-to-right at several tile sizes.
"""

import numpy as np

from repro.attention.dense import softmax
from repro.core.config import PadeConfig
from repro.core.pade_attention import pade_attention
from repro.eval.reporting import print_table
from repro.model.synthetic import PROFILE_PRESETS, synthesize_qkv
from repro.sim.rars import naive_schedule, rars_schedule


def _lost_mass(res):
    logits = (res.q_int.data @ res.k_int.data.T) * res.logit_scale
    probs = softmax(logits, axis=-1)
    return float(np.where(res.retained, 0.0, probs).sum(axis=-1).mean())


def test_guard_radius_sweep(benchmark):
    rng = np.random.default_rng(41)
    q, k, v = synthesize_qkv(8, 1024, 64, PROFILE_PRESETS["nlp"], rng)

    def sweep():
        out = {}
        for radius in (2.0, 3.5, 5.0, 7.0, 10.0):
            res = pade_attention(q, k, v, PadeConfig(alpha=0.6, radius=radius))
            out[radius] = (res.sparsity, _lost_mass(res), res.mean_planes_per_candidate)
        return out

    data = benchmark(sweep)
    rows = [[r, round(s, 3), round(m, 4), round(p, 2)] for r, (s, m, p) in data.items()]
    print_table("guard radius sweep (alpha=0.6)", ["radius", "sparsity", "lost mass", "planes"], rows)
    masses = [m for _, m, _ in data.values()]
    spars = [s for s, _, _ in data.values()]
    assert all(a >= b - 1e-9 for a, b in zip(masses, masses[1:]))  # larger radius, safer
    assert all(a >= b - 1e-9 for a, b in zip(spars, spars[1:]))  # and less sparse
    # radius 5 (the paper default) keeps lost mass ~1% at high sparsity
    assert data[5.0][1] < 0.05 and data[5.0][0] > 0.5


def test_tile_size_sweep(benchmark):
    rng = np.random.default_rng(42)
    q, k, v = synthesize_qkv(4, 1024, 64, PROFILE_PRESETS["nlp"], rng)

    def sweep():
        out = {}
        for bc in (4, 8, 16, 32, 64):
            res = pade_attention(q, k, v, PadeConfig(alpha=0.6, tile_size=bc))
            out[bc] = (res.stats.max_updates, res.stats.tiles_flushed, res.stats.rescale_vector_ops)
        return out

    data = benchmark(sweep)
    rows = [[bc, u, t, r] for bc, (u, t, r) in data.items()]
    print_table("ISTA tile size Bc", ["Bc", "max updates", "tiles", "rescale ops"], rows)
    # smaller tiles -> more tiles and at least as many max updates (Fig. 10b's
    # "overhead becomes more as Bc decreases")
    assert data[4][1] > data[64][1]
    assert data[4][0] >= data[64][0]


def test_rars_buffer_sweep(benchmark):
    rng = np.random.default_rng(43)
    shared = list(rng.choice(256, 70, replace=False))
    reqs = [sorted(set(shared + list(rng.choice(256, 20)))) for _ in range(8)]

    def sweep():
        out = {}
        for buf in (2, 4, 8, 16):
            out[buf] = (
                naive_schedule(reqs, buffer_vectors=buf).total_loads,
                rars_schedule(reqs, buffer_vectors=buf).total_loads,
            )
        return out

    data = benchmark(sweep)
    unique = len({v for r in reqs for v in r})
    rows = [[b, n, r, unique] for b, (n, r) in data.items()]
    print_table("RARS vs naive V loads by buffer depth", ["buffer", "naive", "rars", "unique"], rows)
    for buf, (n, r) in data.items():
        assert r <= n
        assert r >= unique
