"""Fig. 17 — design-space exploration: GSAT sub-group & scoreboard size."""

from repro.eval import harness as H
from repro.eval.reporting import print_table


def test_fig17a_subgroup_dse(benchmark):
    data = benchmark(H.fig17_gsat_dse)
    rows = [[g, round(a, 3), round(p, 3)] for g, (a, p) in sorted(data.items())]
    print_table("Fig. 17(a): GSAT sub-group size DSE (8 = 1.0)", ["sub-group", "area", "power"], rows)
    assert min(data, key=lambda g: data[g][0]) == 8
    assert min(data, key=lambda g: data[g][1]) == 8


def test_fig17b_scoreboard_dse(benchmark):
    entries = (4, 8, 16, 24, 32, 40)
    data = benchmark(
        H.fig17_scoreboard_dse, entries_list=entries, sparsity_levels=(0.85, 0.90, 0.95), seq_len=512
    )
    rows = [[e] + [round(data[sp][e], 3) for sp in (0.85, 0.90, 0.95)] for e in entries]
    print_table(
        "Fig. 17(b): PE utilization vs scoreboard entries",
        ["entries", "85% sparsity", "90% sparsity", "95% sparsity"],
        rows,
    )
    for sp in (0.85, 0.90, 0.95):
        assert data[sp][32] > data[sp][4]  # grows
        assert data[sp][40] <= data[sp][32] * 1.05  # saturates at ~32
