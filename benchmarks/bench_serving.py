"""Serving benchmark: continuous batching vs lockstep over the paged pool.

Acceptance workload (ISSUE 2): a Poisson arrival stream served under one
global KV token budget, three ways:

* **continuous** — :class:`repro.engine.ContinuousScheduler` with
  arrival-time admission at every decode-round boundary over the shared
  :class:`~repro.engine.cache.PlaneBlockPool`;
* **lockstep** — the same scheduler with ``admission="drain"``: a batch
  is formed and fully drained before new arrivals are admitted (the
  static-batching baseline the motivation section describes);
* **dense** — the PR-1 :class:`~repro.engine.EngineScheduler` with
  per-request dense caches, used only as the retained-set oracle.

The script asserts (a) continuous batching beats lockstep on mean TTFT,
and (b) every request's retained-token sets are byte-identical across the
paged and dense cache paths under both kernel backends
(``RequestResult.retained_bytes``).  A second sweep reports throughput
and preemption counts as the token budget shrinks.

    python benchmarks/bench_serving.py [--requests N] [--rate R] [--budget B]
    python benchmarks/bench_serving.py --quick --json-out BENCH_serving.json

``--quick`` shrinks the workload for the CI perf-smoke job (same
assertions, less wall-clock) and ``--json-out`` writes the measured dict
to disk so the run can be archived as a build artifact.  Also runnable
under pytest (the module-level test uses the same reduced workload).
"""

from __future__ import annotations

import argparse
import json

from repro.core import PadeConfig
from repro.engine import PadeEngine
from repro.eval.serving_metrics import summarize_serving
from repro.eval.workloads import build_serving_workload


def _serve(workload, backend, budget, block_size, max_active, policy, admission):
    engine = PadeEngine(PadeConfig.standard(), backend=backend)
    results = engine.serve(
        workload,
        max_active=max_active,
        token_budget=budget,
        block_size=block_size,
        policy=policy,
        admission=admission,
    )
    scheduler = engine.last_serve
    report = summarize_serving(
        results.values(),
        occupancy=scheduler.occupancy,
        token_budget=scheduler.pool.token_budget if scheduler.pool else None,
    )
    return results, report


def _serve_dense(workload, backend, max_active):
    """PR-1 lockstep scheduler with dense caches: the retained-set oracle."""
    engine = PadeEngine(PadeConfig.standard(), backend=backend, max_active=max_active)
    for request in workload:
        engine.submit(request)
    return engine.run()


def run_comparison(
    num_requests: int = 8,
    rate: float = 0.35,
    context: int = 72,
    steps: int = 12,
    num_heads: int = 4,
    head_dim: int = 32,
    budget: int = 512,
    block_size: int = 16,
    max_active: int = 3,
    seed: int = 7,
):
    """Continuous vs lockstep TTFT under one budget + paged/dense parity."""
    workload = build_serving_workload(
        num_requests, num_heads, context, steps, head_dim, rate=rate, seed=seed
    )
    out = {"parity_ok": True}
    reference_bytes = None
    for backend in ("fast", "reference"):
        cont, cont_report = _serve(
            workload, backend, budget, block_size, max_active, "fcfs", "continuous"
        )
        lock, lock_report = _serve(
            workload, backend, budget, block_size, max_active, "fcfs", "drain"
        )
        dense = _serve_dense(workload, backend, max_active)
        digests = {
            rid: cont[rid].retained_bytes() for rid in sorted(cont)
        }
        for rid in digests:
            if not (
                digests[rid]
                == lock[rid].retained_bytes()
                == dense[rid].retained_bytes()
            ):
                out["parity_ok"] = False
        if reference_bytes is None:
            reference_bytes = digests
        elif digests != reference_bytes:
            out["parity_ok"] = False
        if backend == "fast":
            out["continuous"] = cont_report
            out["lockstep"] = lock_report
    out["ttft_improvement"] = (
        out["lockstep"]["mean_ttft"] / out["continuous"]["mean_ttft"]
        if out["continuous"]["mean_ttft"] > 0
        else float("inf")
    )
    return out


def budget_sweep(
    budgets=(192, 256, 384, 1024),
    num_requests: int = 8,
    rate: float = 0.35,
    context: int = 72,
    steps: int = 24,
    num_heads: int = 4,
    head_dim: int = 32,
    block_size: int = 8,
    max_active: int = 4,
    seed: int = 7,
):
    """Throughput / TTFT / preemptions as the global token budget shrinks."""
    workload = build_serving_workload(
        num_requests, num_heads, context, steps, head_dim, rate=rate, seed=seed
    )
    rows = []
    for budget in budgets:
        _, report = _serve(
            workload, "fast", budget, block_size, max_active, "fcfs", "continuous"
        )
        rows.append(
            {
                "budget": budget,
                "throughput_tokens_per_round": report["throughput_tokens_per_round"],
                "mean_ttft": report["mean_ttft"],
                "p95_ttft": report["p95_ttft"],
                "preemptions": report["preemptions"],
                "peak_pool_occupancy": report.get("peak_pool_occupancy", 0.0),
            }
        )
    return rows


def test_continuous_beats_lockstep():
    """Reduced workload for the benchmark suite: same assertions, less time."""
    r = run_comparison(num_requests=6, context=48, steps=8, budget=384, max_active=2)
    assert r["parity_ok"], "paged/dense retained sets diverged across backends"
    assert r["continuous"]["mean_ttft"] < r["lockstep"]["mean_ttft"], (
        f"continuous TTFT {r['continuous']['mean_ttft']:.2f} not better than "
        f"lockstep {r['lockstep']['mean_ttft']:.2f}"
    )


def test_budget_sweep_shows_pressure():
    """A tight budget triggers preemption; an ample one does not."""
    rows = budget_sweep(budgets=(192, 1024), num_requests=6)
    assert rows[0]["preemptions"] > 0, "tight budget never preempted"
    assert rows[-1]["preemptions"] == 0, "ample budget preempted"
    assert rows[0]["throughput_tokens_per_round"] <= rows[-1]["throughput_tokens_per_round"]
    assert all(row["peak_pool_occupancy"] <= 1.0 for row in rows)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=8)
    parser.add_argument("--rate", type=float, default=0.35)
    parser.add_argument("--context", type=int, default=72)
    parser.add_argument("--steps", type=int, default=12)
    parser.add_argument("--heads", type=int, default=4)
    parser.add_argument("--head-dim", type=int, default=32)
    parser.add_argument("--budget", type=int, default=512)
    parser.add_argument("--block-size", type=int, default=16)
    parser.add_argument("--max-active", type=int, default=3)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced workload for CI perf-smoke (same assertions)",
    )
    parser.add_argument(
        "--json-out", default=None,
        help="write the measured results dict to this JSON file",
    )
    args = parser.parse_args()
    if args.quick:
        args.requests, args.context, args.steps = 6, 48, 8
        args.budget, args.max_active = 384, 2

    print(
        f"serving sweep: {args.requests} requests, Poisson rate {args.rate}/round, "
        f"{args.context}-token prompts (±25%), {args.steps} decode steps, "
        f"budget {args.budget} tokens / blocks of {args.block_size}"
    )
    r = run_comparison(
        args.requests, args.rate, args.context, args.steps, args.heads,
        args.head_dim, args.budget, args.block_size, args.max_active,
    )
    for mode in ("continuous", "lockstep"):
        rep = r[mode]
        print(
            f"  {mode:11s}: mean TTFT {rep['mean_ttft']:6.2f}  "
            f"p95 {rep['p95_ttft']:6.2f}  mean TPOT {rep['mean_tpot']:5.2f}  "
            f"queueing {rep['mean_queueing_delay']:6.2f}  "
            f"throughput {rep['throughput_tokens_per_round']:5.2f} tok/round  "
            f"preemptions {rep['preemptions']:.0f}"
        )
    print(f"  TTFT improvement        : {r['ttft_improvement']:.2f}x")
    print(f"  paged == dense retained : {r['parity_ok']} (both backends)")

    print("\nthroughput vs budget (continuous, fast backend, longer decode):")
    sweep = budget_sweep(
        budgets=(192, 1024) if args.quick else (192, 256, 384, 1024),
        num_requests=args.requests, rate=args.rate, context=args.context,
        num_heads=args.heads, head_dim=args.head_dim,
        max_active=args.max_active + 1,
    )
    for row in sweep:
        print(
            f"  budget {row['budget']:5d}: {row['throughput_tokens_per_round']:5.2f} tok/round  "
            f"mean TTFT {row['mean_ttft']:6.2f}  p95 {row['p95_ttft']:6.2f}  "
            f"preemptions {row['preemptions']:3.0f}  "
            f"peak occupancy {row['peak_pool_occupancy']:.0%}"
        )

    assert r["parity_ok"], "paged/dense retained sets diverged"
    assert r["continuous"]["mean_ttft"] < r["lockstep"]["mean_ttft"], (
        "continuous batching did not beat lockstep on mean TTFT"
    )
    print("\nPASS: continuous beats lockstep on mean TTFT with byte-identical retention")
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump({"comparison": r, "budget_sweep": sweep}, fh, indent=2)
        print(f"wrote {args.json_out}")


if __name__ == "__main__":
    main()
