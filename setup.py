import os
import re

from setuptools import find_packages, setup


def _version() -> str:
    """Read __version__ from the package without importing it."""
    init = os.path.join(os.path.dirname(__file__), "src", "repro", "__init__.py")
    with open(init, encoding="utf-8") as fh:
        match = re.search(r'^__version__\s*=\s*"([^"]+)"', fh.read(), re.M)
    if not match:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="pade-repro",
    version=_version(),
    description=(
        "Reproduction of PADE (HPCA 2026): predictor-free sparse attention "
        "via bit-serial stage fusion — algorithms, serving engine, and "
        "accelerator models"
    ),
    long_description=open("README.md", encoding="utf-8").read()
    if os.path.exists("README.md")
    else "",
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.22"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
)
