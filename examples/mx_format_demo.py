"""MXINT extension: guarded filtering under micro-scaling quantization.

Reproduces the Fig. 25 walk-through: quantize Q/K with 32-element group
scales, compute group-local uncertainty intervals, scale each by its group
coupling, sum, and verify the exact float score always stays inside the
interval — the property that lets BUI-GF run unchanged on MX operands.

    python examples/mx_format_demo.py
"""

import numpy as np

from repro.core.mx import build_mx_bui_lut, mx_score_bounds
from repro.quant.mxint import quantize_mxint


def main() -> None:
    rng = np.random.default_rng(25)
    q = rng.normal(size=(2, 64)) * np.array([[1.0], [4.0]])  # distinct ranges
    k = rng.normal(size=(6, 64))
    q_mx = quantize_mxint(q)
    k_mx = quantize_mxint(k)
    exact = q_mx.dequantize() @ k_mx.dequantize().T

    lut = build_mx_bui_lut(q_mx)
    print("group masses (query 0):", lut.pos_mass[0], lut.neg_mass[0])

    print(f"\n{'planes':>6s} {'S_min':>10s} {'exact':>10s} {'S_max':>10s}  width")
    for planes_known in (1, 2, 4, 6, 8):
        lo, hi = mx_score_bounds(q_mx, k_mx, 0, 0, planes_known)
        inside = "ok" if lo - 1e-9 <= exact[0, 0] <= hi + 1e-9 else "VIOLATION"
        print(f"{planes_known:6d} {lo:10.2f} {exact[0, 0]:10.2f} {hi:10.2f}  "
              f"{hi - lo:8.2f}  {inside}")

    violations = 0
    for r in (1, 2, 4, 8):
        for i in range(2):
            for j in range(6):
                lo, hi = mx_score_bounds(q_mx, k_mx, i, j, r)
                if not (lo - 1e-9 <= exact[i, j] <= hi + 1e-9):
                    violations += 1
    print(f"\nsoundness: {2 * 6 * 4 - violations}/{2 * 6 * 4} pair-prefix checks passed")


if __name__ == "__main__":
    main()
