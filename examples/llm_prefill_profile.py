"""Profile an LLM prefill on the PADE accelerator vs the SOTA designs.

Builds a Llama-2-7B-shaped attention workload, measures the functional
pipeline's sparsity statistics, runs a multi-head prefill on the batched
serving engine, runs the cycle-approximate PADE simulator, and places the
analytic SOTA models (Sanger / SpAtten / Energon / DOTA / SOFA / dense /
H100) on the same workload — the Fig. 14/18/21 methodology in one script.

    python examples/llm_prefill_profile.py [seq_len] [backend]
"""

import sys

import numpy as np

from repro.accelerators import (
    AttentionWorkload, DenseAccelerator, DotaModel, EnergonModel, GPUModel,
    PadeAnalyticModel, SangerModel, SofaModel, SpAttenModel,
)
from repro.core import PadeConfig, set_default_backend
from repro.engine import PadeEngine
from repro.eval.reporting import print_table
from repro.eval.workloads import build_engine_request, measure_pipeline_stats
from repro.model.configs import get_model
from repro.model.synthetic import PROFILE_PRESETS, synthesize_qkv
from repro.sim.accelerator import AcceleratorConfig, PadeAccelerator


def main(seq_len: int = 2048) -> None:
    model = get_model("llama2-7b")
    stats = measure_pipeline_stats(model, seq_len)
    print(f"Llama-2-7B prefill @ {seq_len} tokens")
    print(f"  measured keep fraction : {stats.keep_fraction:.3f}")
    print(f"  measured planes/key    : {stats.mean_planes:.2f} / 8")
    print(f"  BS effective-bit ratio : {stats.effective_bit_fraction:.2f}")

    # --- Multi-head prefill on the serving engine --------------------------
    engine = PadeEngine(PadeConfig.standard())
    request = build_engine_request(
        "prefill", num_heads=8, context_len=min(seq_len, 1024), decode_steps=0,
        head_dim=model.head_dim, prompt_queries=8,
    )
    cache = engine.new_cache(8, model.head_dim, model.head_dim)
    res = engine.prefill(cache, request.k, request.v, q=request.q_prompt)
    print(f"\nengine prefill ({engine.kernel.name} backend, 8 heads x {cache.length} keys):")
    print(f"  head-batched sparsity  : {res.sparsity:.3f}")
    print(f"  planes decomposed once : {engine.stats.rows_decomposed:,} rows "
          f"(resident for the whole decode phase)")

    # --- Cycle-approximate simulation of one representative head ----------
    rng = np.random.default_rng(1)
    q, k, v = synthesize_qkv(8, min(seq_len, 1024), model.head_dim, PROFILE_PRESETS["nlp"], rng)
    pade_sim = PadeAccelerator(AcceleratorConfig()).run_head(q, k, v)
    dense_sim = PadeAccelerator(AcceleratorConfig().dense_baseline()).run_head(q, k, v)
    print(f"\ncycle simulator (one 8-query head block):")
    print(f"  PADE : {pade_sim.latency_cycles:8.0f} cycles, {pade_sim.energy_pj / 1e3:8.1f} nJ, "
          f"utilization {pade_sim.utilization:.0%}")
    print(f"  dense: {dense_sim.latency_cycles:8.0f} cycles, {dense_sim.energy_pj / 1e3:8.1f} nJ")
    print(f"  -> {dense_sim.latency_cycles / pade_sim.latency_cycles:.1f}x speedup, "
          f"{dense_sim.energy_pj / pade_sim.energy_pj:.1f}x energy saving")

    # --- Full-model analytic comparison ------------------------------------
    w = AttentionWorkload(
        num_queries=seq_len, seq_len=seq_len, head_dim=model.head_dim,
        num_heads=model.num_heads, num_kv_heads=model.num_kv_heads,
        num_layers=model.num_layers,
        oracle_keep=stats.keep_fraction / 1.05, mean_planes=stats.mean_planes,
    )
    designs = [
        GPUModel(), DenseAccelerator(), SangerModel(), SpAttenModel(),
        EnergonModel(), DotaModel(), SofaModel(), PadeAnalyticModel(),
    ]
    reports = {d.name: d.cost(w) for d in designs}
    pade = reports["pade"]
    rows = [
        [name, f"{r.latency_s * 1e3:.1f}", f"{r.total_energy_pj / 1e9:.2f}",
         f"{r.cycles / pade.cycles:.2f}", f"{r.total_energy_pj / pade.total_energy_pj:.2f}",
         f"{r.keep_fraction:.2f}"]
        for name, r in reports.items()
    ]
    print_table(
        f"full attention stack @ {seq_len} tokens",
        ["design", "latency (ms)", "energy (mJ)", "time vs PADE", "energy vs PADE", "keep"],
        rows,
    )


if __name__ == "__main__":
    if len(sys.argv) > 2:
        set_default_backend(sys.argv[2])
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2048)
