"""Design-space exploration of the PADE accelerator (Figs. 16b/17).

Sweeps the three knobs the paper explores:

* the pruning aggressiveness α (accuracy vs sparsity trade-off),
* the GSAT sub-group size (mux vs subtractor balance),
* the scoreboard depth (PE utilization saturation),

using the same machinery as the corresponding benchmarks.

    python examples/accelerator_dse.py
"""

from repro.eval.harness import fig16_alpha_tradeoff, fig17_gsat_dse, fig17_scoreboard_dse
from repro.eval.reporting import print_table
from repro.sim.area import DesignPoint, scaled_breakdown


def main() -> None:
    alphas = (0.8, 0.7, 0.6, 0.5, 0.4, 0.3)
    tradeoff = fig16_alpha_tradeoff(alphas)
    print_table(
        "alpha sweep (Llama-2-7B): accuracy vs sparsity",
        ["alpha", "MMLU acc", "MBPP acc", "sparsity %"],
        [[a, round(tradeoff["acc_mmlu"][a], 2), round(tradeoff["acc_mbpp"][a], 2),
          round(tradeoff["spa_mmlu"][a], 1)] for a in alphas],
    )

    dse = fig17_gsat_dse()
    print_table(
        "GSAT sub-group size (relative to g=8)",
        ["sub-group", "area", "power"],
        [[g, round(a, 2), round(p, 2)] for g, (a, p) in sorted(dse.items())],
    )

    sb = fig17_scoreboard_dse(entries_list=(4, 8, 16, 32, 40), sparsity_levels=(0.90,))
    print_table(
        "scoreboard entries vs PE utilization (90% sparsity)",
        ["entries", "utilization"],
        [[e, round(u, 3)] for e, u in sb[0.90].items()],
    )

    # What would a 16-entry-scoreboard, 16-wide-subgroup PADE cost?
    variant = scaled_breakdown(DesignPoint(gsat_subgroup=16, scoreboard_entries=16))
    base_total = sum(scaled_breakdown(DesignPoint()).values())
    print(f"\nvariant area: {sum(variant.values()):.2f} mm² "
          f"(default {base_total:.2f} mm²) — the default is the paper's optimum")


if __name__ == "__main__":
    main()
