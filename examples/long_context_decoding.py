"""Long-context decoding: where the predictor-free design pays off most.

Decoding streams the whole KV cache every step with no reuse, so memory
dominates (>85% of energy) and a stage-splitting predictor must touch every
key every step.  This script first *runs* a decode loop on the serving
engine (persistent bit-plane cache + head-batched filter — the software
realization of the same reuse argument), then sweeps context lengths from
4k to 1M tokens comparing dense / SOFA (best predictor-based design) /
PADE, plus the GPU+PADE co-processor system of Fig. 24.

    python examples/long_context_decoding.py [backend]
"""

import sys

from repro.accelerators import (
    AttentionWorkload, DenseAccelerator, GPUModel, PadeAnalyticModel, SofaModel,
)
from repro.core import PadeConfig, set_default_backend
from repro.engine import PadeEngine
from repro.eval.harness import fig24_system_integration
from repro.eval.reporting import print_table
from repro.eval.workloads import build_engine_request, measure_pipeline_stats
from repro.model.configs import get_model


def engine_decode_demo(num_heads: int = 8, context: int = 1024, steps: int = 32) -> None:
    """Measured decode loop on the batched engine (not the analytic model)."""
    engine = PadeEngine(PadeConfig.standard())
    engine.submit(build_engine_request("demo", num_heads, context, steps, head_dim=64))
    results = engine.run()
    stats = engine.stats
    res = results["demo"]
    print(f"engine decode ({engine.kernel.name} backend): "
          f"{num_heads} heads, {context}+{steps} tokens")
    print(f"  retained fraction      : {1.0 - stats.sparsity:.3f}")
    print(f"  planes cached / reused : {stats.rows_decomposed:,} / {stats.rows_reused:,} rows "
          f"({stats.decomposition_reuse:.1%} reuse)")
    print(f"  final cache length     : {res.final_length} tokens\n")


def main() -> None:
    engine_decode_demo()

    model = get_model("llama3-8b")
    steps = 256

    rows = []
    for seq in (4_096, 16_384, 65_536, 214_000, 1_000_000):
        stats = measure_pipeline_stats(model, seq)
        w = AttentionWorkload(
            num_queries=steps, seq_len=seq, head_dim=model.head_dim,
            num_heads=model.num_heads, num_kv_heads=model.num_kv_heads,
            num_layers=model.num_layers, decode=True,
            oracle_keep=stats.keep_fraction / 1.05, mean_planes=stats.mean_planes,
        )
        dense = DenseAccelerator().cost(w)
        sofa = SofaModel().cost(w)
        pade = PadeAnalyticModel().cost(w)
        gpu = GPUModel().cost(w)
        rows.append([
            f"{seq:,}",
            f"{stats.keep_fraction:.4f}",
            f"{pade.latency_s / steps * 1e3:.2f}",
            f"{dense.total_energy_pj / pade.total_energy_pj:.2f}",
            f"{sofa.total_energy_pj / pade.total_energy_pj:.2f}",
            f"{gpu.total_energy_pj / pade.total_energy_pj:.1f}",
        ])
    print_table(
        f"decoding {steps} tokens (energy ratios vs PADE)",
        ["context", "keep frac", "PADE ms/token", "dense x", "SOFA x", "H100 x"],
        rows,
    )

    print("\nGPU + PADE co-processor (Fig. 24):")
    system = fig24_system_integration()
    for name, v in system.items():
        print(f"  {name:20s}: end-to-end speedup {v['speedup']:.2f}x "
              f"(latency {v['gpu_pade_conv']:.2f} of GPU-only)")


if __name__ == "__main__":
    if len(sys.argv) > 1:
        set_default_backend(sys.argv[1])
    main()
