"""Quickstart: predictor-free sparse attention with PADE.

Runs one attention head through the full PADE pipeline — INT8 quantization,
bit-plane decomposition, BUI-guarded bit-serial filtering fused with
execution, ISTA tiling — and compares the output and cost against dense
attention.

    python examples/quickstart.py
"""

import numpy as np

from repro.attention.dense import dense_attention
from repro.core import PadeConfig, pade_attention
from repro.model.synthetic import PROFILE_PRESETS, synthesize_qkv


def main() -> None:
    # A realistic attention problem: 8 queries against 1024 keys whose score
    # structure mimics an LLM decoder layer (sinks + locality + heavy hitters).
    rng = np.random.default_rng(0)
    q, k, v = synthesize_qkv(
        num_queries=8, num_keys=1024, head_dim=64,
        profile=PROFILE_PRESETS["nlp"], rng=rng,
    )

    reference = dense_attention(q, k, v)

    for label, config in (
        ("standard (α=0.6, ~0% loss)", PadeConfig.standard()),
        ("aggressive (α=0.5, ~1% loss)", PadeConfig.aggressive()),
    ):
        result = pade_attention(q, k, v, config)
        err = float(np.abs(result.output - reference).max())
        print(f"PADE {label}")
        print(f"  token sparsity          : {result.sparsity:.1%}")
        print(f"  bit planes per candidate: {result.mean_planes_per_candidate:.2f} / 8")
        print(f"  effective bit-op ratio  : "
              f"{result.stats.effective_bit_ops / max(1, result.stats.naive_bit_ops):.2f} (BS)")
        print(f"  V rows fetched          : {result.stats.v_rows_loaded} / {8 * 1024}")
        print(f"  max output error vs dense: {err:.4f}")
        print()

    # No pruning (infinite guard) degenerates to dense INT8 attention.
    exact = pade_attention(q, k, v, PadeConfig.dense())
    print(f"dense-config sparsity = {exact.sparsity:.1%}, "
          f"error = {np.abs(exact.output - reference).max():.4f} (INT8 quantization only)")


if __name__ == "__main__":
    main()
