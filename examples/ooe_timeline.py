"""Visualize BS-OOE: per-lane timelines (the Fig. 8(c)-(e) story).

Renders ASCII Gantt charts ('#' = compute, '.' = DRAM wait) for three lane
configurations on the same bit-serial workload:

1. naive in-order, no bidirectional sparsity (imbalanced costs + exposed
   DRAM latency),
2. BS only (balanced costs, latency still exposed),
3. BS + OOE with a 32-entry scoreboard (latency hidden).

    python examples/ooe_timeline.py
"""

import numpy as np

from repro.core.bsf import bsf_filter
from repro.core.bui_gf import guard_in_int_units
from repro.model.synthetic import PROFILE_PRESETS, synthesize_qkv
from repro.quant.bitplane import decompose_bitplanes
from repro.quant.integer import quantize_symmetric
from repro.sim.pe import lane_task_costs
from repro.sim.trace import render_gantt, trace_lane


def main() -> None:
    rng = np.random.default_rng(8)
    q, k, v = synthesize_qkv(1, 256, 64, PROFILE_PRESETS["nlp"], rng)
    qi = quantize_symmetric(q)
    ki = quantize_symmetric(k)
    planes = decompose_bitplanes(ki.data)
    guard = guard_in_int_units(0.6, 5.0, float(qi.scale) * float(ki.scale) / 8.0)
    res = bsf_filter(qi.data, planes, guard)

    def lane_work(costs):
        lanes = []
        for lane in range(4):  # show 4 of the 16 lanes
            tokens = np.arange(lane, 256, 16)
            lanes.append([
                (int(t), costs[: res.planes_processed[0, t], t])
                for t in tokens
                if res.planes_processed[0, t] > 0
            ])
        return lanes

    naive_costs = lane_task_costs(planes.planes, bidirectional=False)
    bs_costs = lane_task_costs(planes.planes, bidirectional=True)

    configs = [
        ("naive bit-serial (no BS, in-order)", naive_costs, False, 1),
        ("+ bidirectional sparsity (in-order)", bs_costs, False, 1),
        ("+ out-of-order (32-entry scoreboard)", bs_costs, True, 32),
    ]
    for title, costs, ooe, entries in configs:
        traces = [
            trace_lane(w, dram_latency=8.0, scoreboard_entries=entries, out_of_order=ooe)
            for w in lane_work(costs)
        ]
        finish = max(t.finish for t in traces)
        print(f"\n=== {title} ===  (finish: {finish:.0f} cycles)")
        print(render_gantt(traces, width=68))


if __name__ == "__main__":
    main()
